"""Tests for the sharded asyncio serving tier.

The tier's headline property is layout-independence: because query ``i``
goes to global worker ``i mod G`` and every worker replays a deterministic
virtual timeline, an ``S x W`` run must produce *float-exactly* the same
metrics, event feeds and audit verdicts as a ``1 x S*W`` run on the same
trace — paced or not.  These tests pin that, plus the overload accounting
identities, attribution exactness, hot-swap atomicity, and the merged-feed
reconstruction path that ``ramsis report`` / ``ramsis explain`` consume.
"""

import threading

import pytest

from repro.arrivals.traces import LoadTrace
from repro.errors import SimulationError
from repro.obs.aggregate import merge_run_dir
from repro.obs.attribution import LatencyAttributor
from repro.obs.audit import GuaranteeAuditor
from repro.obs.reconstruct import reconstruct_metrics
from repro.runtime import AdmissionControl, ShardedController
from repro.runtime.shard import DROPPED_MODEL, REJECTED_MODEL
from repro.selectors import GreedyDeadlineSelector, RamsisSelector
from repro.sim.latency_model import DeterministicLatency

#: Aggressive compression keeps paced runs fast (100x real time).
FAST = 0.01

TRACE = LoadTrace.constant(150.0, 2_000.0)
#: Far beyond what four workers can drain: forces admission/drop paths.
OVERLOAD = LoadTrace.constant(4_000.0, 1_000.0)


def run_sharded(models, shards, wps, *, paced=False, seed=1, trace=TRACE,
                **kwargs):
    controller = ShardedController(
        models,
        slo_ms=100.0,
        num_shards=shards,
        workers_per_shard=wps,
        latency_model=DeterministicLatency(),
        time_scale=FAST,
        seed=seed,
        paced=paced,
        **kwargs,
    )
    return controller.serve(lambda s: GreedyDeadlineSelector(), trace)


class TestConstruction:
    def test_rejects_zero_shards(self, tiny_models):
        with pytest.raises(SimulationError):
            ShardedController(tiny_models, 100.0, num_shards=0, workers_per_shard=1)

    def test_rejects_zero_workers(self, tiny_models):
        with pytest.raises(SimulationError):
            ShardedController(tiny_models, 100.0, num_shards=1, workers_per_shard=0)

    def test_rejects_bad_admission(self):
        with pytest.raises(SimulationError):
            AdmissionControl(max_queue_depth=0)

    def test_auditor_count_validated(self, tiny_models):
        controller = ShardedController(
            tiny_models, 100.0, num_shards=2, workers_per_shard=1,
            latency_model=DeterministicLatency(), time_scale=FAST,
        )
        with pytest.raises(SimulationError):
            controller.serve(lambda s: GreedyDeadlineSelector(), TRACE,
                             auditors=[None])


class TestDeterminism:
    """§4.4/§5.1 preservation: results are a function of the trace alone."""

    def test_layouts_float_exact(self, tiny_models):
        r22 = run_sharded(tiny_models, 2, 2, paced=True)
        r14 = run_sharded(tiny_models, 1, 4, paced=True)
        r41 = run_sharded(tiny_models, 4, 1, paced=False)
        assert r22.submitted == r14.submitted == r41.submitted > 0
        # Dataclass equality: every aggregate (violation rate, accuracy,
        # percentiles, per-model counts) must match bit for bit.
        assert r22.metrics == r14.metrics
        assert r22.metrics == r41.metrics

    def test_repeat_runs_identical(self, tiny_models):
        a = run_sharded(tiny_models, 2, 2, paced=False)
        b = run_sharded(tiny_models, 2, 2, paced=False)
        assert a.metrics == b.metrics

    def test_report_accounting(self, tiny_models):
        r = run_sharded(tiny_models, 2, 2, paced=False)
        assert r.rejected == r.dropped == 0
        assert r.served == r.submitted == r.metrics.total_queries
        assert r.admitted == r.submitted
        assert r.qps > 0
        assert r.num_shards == 2 and r.workers_per_shard == 2

    def test_paced_reports_added_latency(self, tiny_models):
        r = run_sharded(tiny_models, 1, 2, paced=True)
        # Wall-clock lag behind the virtual timeline exists but is small
        # (scheduling jitter, not seconds of drift).
        assert 0.0 <= r.p99_added_latency_ms < 1_000.0

    def test_unpaced_has_no_added_latency_samples(self, tiny_models):
        r = run_sharded(tiny_models, 2, 1, paced=False)
        assert r.p99_added_latency_ms == 0.0


class TestReconstruction:
    """run_dir feeds merge back into the exact same aggregates."""

    def test_merged_feed_reconstructs_exactly(self, tiny_models, tmp_path):
        r = run_sharded(tiny_models, 2, 2, run_dir=str(tmp_path))
        merged = merge_run_dir(tmp_path)
        summary = reconstruct_metrics(merged.tracer)
        assert summary.total_queries == r.metrics.total_queries
        assert summary.satisfied_queries == r.metrics.satisfied_queries
        assert summary.decisions == r.metrics.decisions
        # Float-exact, not approx: the fold order is pinned.
        assert summary.violation_rate == r.metrics.violation_rate
        assert (summary.accuracy_per_satisfied_query
                == r.metrics.accuracy_per_satisfied_query)
        assert summary.mean_batch_size == r.metrics.mean_batch_size
        assert summary.arrivals == r.submitted

    def test_merged_feed_layout_independent(self, tiny_models, tmp_path):
        d22, d14 = tmp_path / "s22", tmp_path / "s14"
        run_sharded(tiny_models, 2, 2, run_dir=str(d22))
        run_sharded(tiny_models, 1, 4, run_dir=str(d14))
        a = reconstruct_metrics(merge_run_dir(d22).tracer)
        b = reconstruct_metrics(merge_run_dir(d14).tracer)
        assert a == b

    def test_artifacts_present(self, tiny_models, tmp_path):
        run_sharded(tiny_models, 2, 2, run_dir=str(tmp_path),
                    snapshot_interval_s=0.05)
        names = {p.name for p in tmp_path.iterdir()}
        for gid in range(4):
            assert f"shard-{gid}.jsonl" in names
        # Final live snapshots: one per shard, pids offset past worker gids.
        assert "metrics-4.json" in names and "metrics-5.json" in names
        assert "attribution-4.json" in names and "attribution-5.json" in names


class TestOverload:
    def test_admission_reject_accounting(self, tiny_models):
        r = run_sharded(
            tiny_models, 2, 2, trace=OVERLOAD, seed=3,
            admission=AdmissionControl(max_queue_depth=2, min_slack_ms=5.0),
        )
        assert r.rejected > 0
        # Closed accounting: every query is exactly one of the three.
        assert r.submitted == r.rejected + r.dropped + r.served
        assert r.metrics.total_queries == r.submitted
        assert r.metrics.model_query_counts[REJECTED_MODEL] == r.rejected
        assert r.admitted == r.submitted - r.rejected

    def test_drop_late_accounting(self, tiny_models):
        r = run_sharded(tiny_models, 2, 2, trace=OVERLOAD, seed=3,
                        drop_late=True)
        assert r.dropped > 0
        assert r.submitted == r.rejected + r.dropped + r.served
        assert r.metrics.model_query_counts[DROPPED_MODEL] == r.dropped

    def test_min_slack_rejects_hopeless(self, tiny_models):
        # A slack floor above the SLO rejects every query at arrival.
        r = run_sharded(
            tiny_models, 1, 2, seed=5,
            admission=AdmissionControl(min_slack_ms=1_000.0),
        )
        assert r.rejected == r.submitted > 0
        assert r.served == 0

    def test_overload_determinism(self, tiny_models):
        kwargs = dict(
            trace=OVERLOAD, seed=3, drop_late=True,
            admission=AdmissionControl(max_queue_depth=4),
        )
        a = run_sharded(tiny_models, 2, 2, **kwargs)
        b = run_sharded(tiny_models, 4, 1, **kwargs)
        assert a.metrics == b.metrics
        assert (a.rejected, a.dropped) == (b.rejected, b.dropped)

    def test_attribution_phase_split_exact(self, tiny_models):
        attributors = [
            LatencyAttributor(slo_ms=100.0, record_queries=True)
            for _ in range(2)
        ]
        controller = ShardedController(
            tiny_models, slo_ms=100.0, num_shards=2, workers_per_shard=2,
            latency_model=DeterministicLatency(), time_scale=FAST, seed=3,
            paced=False, drop_late=True,
            admission=AdmissionControl(max_queue_depth=4),
        )
        r = controller.serve(lambda s: GreedyDeadlineSelector(), OVERLOAD,
                             attributors=attributors)
        breakdowns = [b for a in attributors for b in a.breakdowns]
        assert len(breakdowns) == r.submitted
        # The split is exact by construction: components sum float-== to
        # the end-to-end latency for every query, drops included.
        for b in breakdowns:
            assert (b.queue_wait_ms + b.batch_wait_ms + b.service_ms
                    + b.drop_ms) == b.response_ms
        dropped = [b for b in breakdowns if b.dropped]
        assert len(dropped) == r.dropped + r.rejected
        assert all(b.service_ms == 0.0 for b in dropped)


class TestHotSwap:
    def test_requires_active_run(self, tiny_models):
        controller = ShardedController(
            tiny_models, 100.0, num_shards=1, workers_per_shard=1,
            latency_model=DeterministicLatency(), time_scale=FAST,
        )
        with pytest.raises(SimulationError):
            controller.hot_swap(lambda s: GreedyDeadlineSelector())

    def test_mid_run_swap_no_disruption(self, tiny_models):
        """Swapping in an equivalent selector mid-run changes nothing.

        The swap is triggered from inside a dispatch decision (so it is
        guaranteed to land mid-run), installing fresh selectors of the
        same kind — results must match a swap-free run float-exactly,
        which is precisely the "no dispatch stall, no half-applied
        policy" property.
        """
        baseline = run_sharded(tiny_models, 2, 2, paced=False)

        controller = ShardedController(
            tiny_models, slo_ms=100.0, num_shards=2, workers_per_shard=2,
            latency_model=DeterministicLatency(), time_scale=FAST, seed=1,
            paced=False,
        )
        swapped = threading.Event()

        class SwapOnce(GreedyDeadlineSelector):
            def select(self, **kwargs):
                action = super().select(**kwargs)
                if not swapped.is_set():
                    swapped.set()
                    controller.hot_swap(lambda s: GreedyDeadlineSelector())
                return action

        report = controller.serve(lambda s: SwapOnce(), TRACE)
        assert swapped.is_set()
        assert report.policy_swaps == 1
        assert report.metrics == baseline.metrics


class TestAudit:
    def test_per_shard_auditors_zero_breaches(self, tiny_config):
        from repro.core.generator import generate_policy
        from repro.core.guarantees import stationary_occupancy
        from repro.core.mdp import build_worker_mdp

        generated = generate_policy(tiny_config)
        policy = generated.policy
        mdp = build_worker_mdp(tiny_config)
        occupancy = stationary_occupancy(mdp, policy).decision_conditional()
        auditors = [
            GuaranteeAuditor(
                generated.guarantees, policy=policy,
                expected_occupancy=occupancy,
            )
            for _ in range(2)
        ]
        controller = ShardedController(
            tiny_config.model_set, slo_ms=tiny_config.slo_ms, num_shards=2,
            workers_per_shard=2, latency_model=DeterministicLatency(),
            time_scale=FAST, seed=2, paced=False,
        )
        trace = LoadTrace.constant(25.0, 2_000.0)
        report = controller.serve(
            lambda s: RamsisSelector(policy), trace, auditors=auditors
        )
        assert report.submitted > 0
        for auditor in auditors:
            audit = auditor.finalize()
            assert audit.violation_breaches == 0
            assert audit.accuracy_breaches == 0
