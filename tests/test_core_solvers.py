"""Tests for value iteration and policy iteration on known MDPs."""

import numpy as np
import pytest

from repro.core.mdp import build_worker_mdp
from repro.core.solvers import policy_iteration, value_iteration
from repro.errors import SolverError


class DenseMDP:
    """A tiny dense MDP implementing the solver backup protocol.

    Two states, two actions; analytic optimum is easy to derive.
    """

    def __init__(self, gamma: float = 0.9) -> None:
        self.gamma = gamma
        # P[a][s, s'], R[a][s]
        self.P = np.array(
            [
                [[1.0, 0.0], [0.5, 0.5]],  # action 0
                [[0.0, 1.0], [0.0, 1.0]],  # action 1
            ]
        )
        self.R = np.array(
            [
                [1.0, 0.0],  # action 0 rewards per state
                [0.0, 2.0],  # action 1 rewards per state
            ]
        )

    def initial_values(self):
        return np.zeros(2)

    def backup(self, values, want_greedy=False):
        from repro.core.mdp import BackupResult

        q = self.R + self.gamma * (self.P @ values)  # (A, S)
        new_values = q.max(axis=0)
        greedy = {}
        if want_greedy:
            best = q.argmax(axis=0)
            greedy = {s: (int(best[s]), 1) for s in range(2)}
        return BackupResult(values=new_values, greedy=greedy)

    def backup_policy(self, values, action_table):
        out = np.empty(2)
        for s in range(2):
            a, _ = action_table[s]
            out[s] = self.R[a, s] + self.gamma * (self.P[a, s] @ values)
        return out


class TestValueIterationOnDenseMDP:
    def test_converges_to_analytic_fixed_point(self):
        """State 1 loops on action 1 forever: V(1) = 2 / (1 - gamma).
        State 0 picks action... compare both closed forms."""
        mdp = DenseMDP(gamma=0.9)
        stats = value_iteration(mdp, tolerance=1e-12)
        v1 = 2.0 / (1.0 - 0.9)
        # State 0: action 1 gives 0 + 0.9 * V(1); action 0 gives
        # 1 + 0.9 * V(0) -> 1/(1-0.9) = 10 < 18.
        assert stats.values[1] == pytest.approx(v1, abs=1e-6)
        assert stats.values[0] == pytest.approx(0.9 * v1, abs=1e-6)

    def test_reports_iterations_and_runtime(self):
        stats = value_iteration(DenseMDP(), tolerance=1e-10)
        assert stats.converged
        assert stats.iterations > 10
        assert stats.runtime_s >= 0.0

    def test_raises_on_iteration_cap(self):
        with pytest.raises(SolverError):
            value_iteration(DenseMDP(), tolerance=1e-12, max_iterations=3)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(SolverError):
            value_iteration(DenseMDP(), tolerance=0.0)

    def test_warm_start(self):
        mdp = DenseMDP()
        cold = value_iteration(mdp, tolerance=1e-10)
        warm = value_iteration(mdp, tolerance=1e-10, initial=cold.values)
        assert warm.iterations < cold.iterations


class TestResidualHistory:
    def test_off_by_default(self):
        assert value_iteration(DenseMDP(), tolerance=1e-10).residuals is None

    def test_recorded_on_request(self):
        stats = value_iteration(
            DenseMDP(), tolerance=1e-10, record_residuals=True
        )
        assert stats.residuals is not None
        assert len(stats.residuals) == stats.iterations
        assert stats.residuals[-1] == stats.residual
        assert stats.residuals[-1] <= 1e-10

    def test_contraction_bound(self):
        """Regression: the Bellman operator is a gamma-contraction in the
        sup norm, so successive residuals must satisfy
        ``r_{k+1} <= gamma * r_k`` (up to float noise)."""
        gamma = 0.9
        stats = value_iteration(
            DenseMDP(gamma=gamma), tolerance=1e-10, record_residuals=True
        )
        residuals = stats.residuals
        assert len(residuals) > 10
        for prev, cur in zip(residuals, residuals[1:]):
            assert cur <= gamma * prev + 1e-12

    def test_contraction_bound_on_worker_mdp(self, tiny_config):
        """The same bound holds on the real worker MDP with its
        configured discount factor."""
        mdp = build_worker_mdp(tiny_config)
        stats = value_iteration(mdp, record_residuals=True)
        gamma = tiny_config.discount
        for prev, cur in zip(stats.residuals, stats.residuals[1:]):
            assert cur <= gamma * prev + 1e-9

    def test_tracer_receives_sweep_events(self):
        from repro.obs.trace import RecordingTracer

        tracer = RecordingTracer()
        stats = value_iteration(DenseMDP(), tolerance=1e-8, tracer=tracer)
        sweeps = [ev for ev in tracer.events if ev.name == "vi_sweep"]
        assert len(sweeps) == stats.iterations
        assert [ev.args["iteration"] for ev in sweeps] == list(
            range(1, stats.iterations + 1)
        )
        traced_residuals = [ev.args["residual"] for ev in sweeps]
        # Tracing implies the history is kept too, and they agree.
        assert tuple(traced_residuals) == stats.residuals

    def test_policy_iteration_rounds_traced(self):
        from repro.obs.trace import RecordingTracer

        tracer = RecordingTracer()
        stats, _ = policy_iteration(DenseMDP(), tracer=tracer)
        rounds = [ev for ev in tracer.events if ev.name == "pi_round"]
        assert rounds
        assert all("actions_changed" in ev.args for ev in rounds)


class TestPolicyIterationOnDenseMDP:
    def test_matches_value_iteration(self):
        mdp = DenseMDP(gamma=0.9)
        vi = value_iteration(mdp, tolerance=1e-12)
        pi_stats, table = policy_iteration(mdp)
        assert np.allclose(pi_stats.values, vi.values, atol=1e-5)
        # Optimal policy: both states take action 1.
        assert table[0][0] == 1
        assert table[1][0] == 1


class TestSolversOnWorkerMDP:
    def test_policy_iteration_agrees_with_value_iteration(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        vi = value_iteration(mdp, tolerance=1e-9)
        pi_stats, table = policy_iteration(mdp, evaluation_sweeps=1500)
        assert np.allclose(pi_stats.values, vi.values, atol=1e-3)
        # The greedy policies coincide exactly.
        vi_greedy = mdp.backup(vi.values, want_greedy=True).greedy
        assert table == vi_greedy

    def test_value_iteration_deterministic(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        a = value_iteration(mdp).values
        b = value_iteration(mdp).values
        assert np.array_equal(a, b)


class TestIterationCeilings:
    """Both solvers fail loudly — and informatively — at their ceilings."""

    def test_vi_cap_message_includes_residual_tail(self):
        with pytest.raises(SolverError, match="last residuals"):
            value_iteration(
                DenseMDP(),
                tolerance=1e-12,
                max_iterations=3,
                record_residuals=True,
            )

    def test_vi_cap_message_reports_residual_without_history(self):
        with pytest.raises(
            SolverError, match=r"did not converge after 3 sweeps"
        ) as excinfo:
            value_iteration(DenseMDP(), tolerance=1e-12, max_iterations=3)
        assert "residual" in str(excinfo.value)
        assert "last residuals" not in str(excinfo.value)

    def test_pi_cap_message_reports_delta_and_flips(self):
        with pytest.raises(
            SolverError, match=r"greedy action\(s\) still changing"
        ) as excinfo:
            policy_iteration(DenseMDP(), max_iterations=1)
        assert "delta" in str(excinfo.value)

    def test_vi_rejects_nonpositive_max_iterations(self):
        with pytest.raises(SolverError, match="max_iterations"):
            value_iteration(DenseMDP(), max_iterations=0)

    def test_pi_rejects_nonpositive_max_iterations(self):
        with pytest.raises(SolverError, match="max_iterations"):
            policy_iteration(DenseMDP(), max_iterations=0)

    def test_pi_rejects_nonpositive_evaluation_sweeps(self):
        with pytest.raises(SolverError, match="evaluation_sweeps"):
            policy_iteration(DenseMDP(), evaluation_sweeps=0)

    def test_vi_cap_on_worker_mdp_backends(self, tiny_config):
        """The ceiling fires identically on both solver backends."""
        for solver in ("loop", "tensor"):
            mdp = build_worker_mdp(tiny_config, solver=solver)
            with pytest.raises(SolverError, match="did not converge"):
                value_iteration(mdp, tolerance=1e-13, max_iterations=2)
