"""Tests for the naive joint-deadline MDP (§3.1.2)."""

import numpy as np
import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.core.discretization import fixed_length_grid
from repro.core.generator import generate_policy
from repro.core.naive import NaiveWorkerMDP


@pytest.fixture
def naive(tiny_models):
    grid = fixed_length_grid(100.0, 5)
    return NaiveWorkerMDP(
        tiny_models, grid, PoissonArrivals(30.0), max_queue=3, max_states=50_000
    )


class TestEnumeration:
    def test_contains_core_states(self, naive):
        assert naive.num_states >= 3  # empty, fresh arrival, overflow
        assert not naive.truncated

    def test_transitions_are_distributions(self, naive):
        for actions in naive._transitions:
            for _, rows in actions:
                total = sum(p for _, p in rows)
                assert total <= 1.0 + 1e-9
                assert total >= 0.95  # probability floor truncation only

    def test_state_space_grows_with_resolution(self, tiny_models):
        def count(d, n):
            grid = fixed_length_grid(100.0, d)
            return NaiveWorkerMDP(
                tiny_models, grid, PoissonArrivals(30.0), max_queue=n
            ).num_states

        assert count(3, 2) < count(5, 3) < count(7, 4)

    def test_truncation_flag(self, tiny_models):
        grid = fixed_length_grid(100.0, 8)
        mdp = NaiveWorkerMDP(
            tiny_models, grid, PoissonArrivals(30.0), max_queue=5, max_states=50
        )
        assert mdp.truncated

    def test_exponential_vs_decomposed_size(self, tiny_models):
        """§3.1.2's point in miniature: the naive space dwarfs RAMSIS's."""
        d, n = 7, 4
        grid = fixed_length_grid(100.0, d)
        naive = NaiveWorkerMDP(
            tiny_models, grid, PoissonArrivals(30.0), max_queue=n
        )
        from repro.core.mdp import build_worker_mdp

        decomposed = build_worker_mdp(
            WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=PoissonArrivals(30.0),
                max_queue=n,
                fld_resolution=d,
            )
        )
        assert naive.num_states > 3 * decomposed.num_states


class TestSolving:
    def test_converges(self, naive):
        values, stats = naive.solve(tolerance=1e-6)
        assert stats.iterations > 0
        assert np.isfinite(values).all()
        assert values.min() >= 0.0

    def test_values_bounded(self, naive, tiny_models):
        values, _ = naive.solve(tolerance=1e-6)
        bound = tiny_models.most_accurate().accuracy / (1.0 - 0.98)
        assert values.max() <= bound + 1e-6

    def test_greedy_actions_valid(self, naive, tiny_models):
        values, _ = naive.solve(tolerance=1e-6)
        grid = naive._grid
        for state in list(naive._states)[:50]:
            action = naive.greedy_action(state, values)
            if state == ():
                assert action is None
                continue
            assert action in tiny_models.names

    def test_agrees_with_decomposed_on_fresh_arrival(self, tiny_models):
        """Both formulations agree on the (1 query, full slack) decision —
        the state where their abstractions coincide exactly."""
        d, n = 5, 3
        grid = fixed_length_grid(100.0, d)
        naive = NaiveWorkerMDP(
            tiny_models, grid, PoissonArrivals(30.0), max_queue=n
        )
        values, _ = naive.solve(tolerance=1e-7)
        naive_choice = naive.greedy_action((grid.slo_index,), values)

        decomposed = generate_policy(
            WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=PoissonArrivals(30.0),
                max_queue=n,
                fld_resolution=d,
            ),
            with_guarantees=False,
        ).policy
        decomposed_choice = decomposed.action_at(1, grid.slo_index).model
        assert naive_choice == decomposed_choice
