"""Tests for the worker MDP (§4): states, actions, rewards, backups."""

import numpy as np
import pytest
from dataclasses import replace

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import BatchingMode, TransitionView, WorkerMDPConfig
from repro.core.mdp import _FALLBACK, build_worker_mdp
from repro.core.solvers import value_iteration


class TestConstruction:
    def test_basic_shape(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        assert mdp.num_models == 3
        assert mdp.max_queue == 11
        assert mdp.num_states == 2 + 11 * len(mdp.grid)

    def test_models_ordered_fastest_first(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        assert mdp.model_names[0] == "fast"
        latencies = [mdp.latency_ms(m, 1) for m in range(mdp.num_models)]
        assert latencies == sorted(latencies)

    def test_latency_and_accuracy_lookup(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        fast = tiny_config.model_set.get("fast")
        assert mdp.latency_ms(0, 3) == pytest.approx(fast.latency_ms(3))
        assert mdp.accuracy_of(0) == fast.accuracy


class TestActionValidity:
    def test_latency_constraint(self, tiny_config):
        """(m, b=n) valid iff l(m, n) <= T_j (§4.3.1)."""
        mdp = build_worker_mdp(tiny_config)
        grid = mdp.grid
        for n in (1, 3, 8):
            for j in (0, len(grid) // 2, len(grid) - 1):
                valid = mdp.valid_actions(n, j)
                for m in range(mdp.num_models):
                    expected = mdp.latency_ms(m, n) <= grid[j]
                    assert ((m, n) in valid) == expected

    def test_variable_batching_widens_action_space(self, tiny_config):
        maximal = build_worker_mdp(tiny_config)
        variable = build_worker_mdp(
            replace(tiny_config, batching=BatchingMode.VARIABLE)
        )
        j = len(maximal.grid) - 1
        assert len(variable.valid_actions(5, j)) > len(maximal.valid_actions(5, j))

    def test_zero_slack_has_no_valid_action(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        assert mdp.valid_actions(2, 0) == []


class TestRewards:
    def test_reward_accuracy_when_satisfied(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        j_top = len(mdp.grid) - 1
        state = mdp.space.index(1, j_top)
        assert mdp.reward_of(state, (2, 1)) == pytest.approx(0.90)

    def test_reward_zero_when_slack_missed(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        state = mdp.space.index(1, 0)  # slack 0
        assert mdp.reward_of(state, (0, 1)) == 0.0

    def test_fallback_reward_zero(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        state = mdp.space.index(3, 0)
        assert mdp.reward_of(state, (_FALLBACK, 3)) == 0.0

    def test_empty_state_reward_zero(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        assert mdp.reward_of(mdp.space.EMPTY, (0, 1)) == 0.0

    def test_per_query_reward_scales_with_batch(self, tiny_config):
        mdp = build_worker_mdp(replace(tiny_config, reward_per_query=True))
        j_top = len(mdp.grid) - 1
        state = mdp.space.index(4, j_top)
        assert mdp.reward_of(state, (0, 4)) == pytest.approx(4 * 0.60)


class TestTransitionRows:
    def test_rows_are_distributions(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        sp = mdp.space
        for state in [sp.EMPTY, sp.FULL, sp.index(1, 5), sp.index(6, 9)]:
            n, _ = sp.decode(state)
            row = mdp.transition_row(state, (0, max(n, 1)))
            assert row.sum() == pytest.approx(1.0, abs=1e-8)
            assert row.min() >= -1e-12

    def test_empty_state_transitions_to_fresh_arrival(self, tiny_config):
        """Eq. 1: empty + arrival -> (1, SLO) with probability 1."""
        mdp = build_worker_mdp(tiny_config)
        sp = mdp.space
        row = mdp.transition_row(sp.EMPTY, (0, 1))
        assert row[sp.index(1, mdp.grid.slo_index)] == 1.0

    def test_full_state_equivalent_to_n_max_zero_slack(self, tiny_config):
        """§4.2.3: the full state transitions like (N_w, 0)."""
        mdp = build_worker_mdp(tiny_config)
        sp = mdp.space
        full_row = mdp.transition_row(sp.FULL, (_FALLBACK, mdp.max_queue))
        bottom_row = mdp.transition_row(
            sp.index(mdp.max_queue, 0), (_FALLBACK, mdp.max_queue)
        )
        assert np.allclose(full_row, bottom_row)

    def test_partial_drain_row(self, tiny_config):
        config = replace(tiny_config, batching=BatchingMode.VARIABLE)
        mdp = build_worker_mdp(config)
        sp = mdp.space
        j = len(mdp.grid) - 1
        row = mdp.transition_row(sp.index(5, j), (0, 2))
        assert row.sum() == pytest.approx(1.0, abs=1e-8)
        # At least 3 queries remain queued in every outcome.
        occ = sp.occupied_view(row)
        assert occ[:2].sum() == 0.0
        assert row[sp.EMPTY] == 0.0

    def test_batch_beyond_queue_rejected(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        with pytest.raises(Exception):
            mdp.transition_row(mdp.space.index(2, 3), (0, 5))


class TestBackup:
    def test_backup_is_monotone_contraction(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        v0 = mdp.initial_values()
        v1 = mdp.backup(v0).values
        v2 = mdp.backup(v1).values
        gamma = tiny_config.discount
        # Contraction in sup norm.
        assert np.max(np.abs(v2 - v1)) <= gamma * np.max(np.abs(v1 - v0)) + 1e-9

    def test_values_bounded_by_geometric_series(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        stats = value_iteration(mdp)
        bound = 0.90 / (1.0 - tiny_config.discount)
        assert stats.values.max() <= bound + 1e-6
        assert stats.values.min() >= 0.0

    def test_greedy_action_table_complete(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        result = mdp.backup(mdp.initial_values(), want_greedy=True)
        for n in range(1, mdp.max_queue + 1):
            for j in range(len(mdp.grid)):
                assert mdp.space.index(n, j) in result.greedy

    def test_backup_policy_consistent_with_backup(self, tiny_config):
        """Evaluating the greedy policy for V reproduces backup(V)."""
        mdp = build_worker_mdp(tiny_config)
        stats = value_iteration(mdp, tolerance=1e-9)
        result = mdp.backup(stats.values, want_greedy=True)
        evaluated = mdp.backup_policy(stats.values, result.greedy)
        assert np.allclose(evaluated, result.values, atol=1e-6)

    def test_exact_view_backup_runs(self, tiny_models):
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(50.0),
            num_workers=2,
            max_batch_size=6,
            fld_resolution=8,
            view=TransitionView.EXACT_ROUND_ROBIN,
        )
        mdp = build_worker_mdp(config)
        stats = value_iteration(mdp)
        assert stats.converged

    def test_variable_batching_at_least_as_good(self, tiny_config):
        """A superset of actions can never lower the optimal value."""
        maximal = build_worker_mdp(tiny_config)
        variable = build_worker_mdp(
            replace(tiny_config, batching=BatchingMode.VARIABLE)
        )
        v_max = value_iteration(maximal).values
        v_var = value_iteration(variable).values
        assert (v_var >= v_max - 1e-6).all()


class TestPolicyExtraction:
    def test_policy_covers_all_states(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        assert len(policy.states()) == mdp.max_queue * len(mdp.grid)

    def test_fallback_states_marked_late(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        action = policy.action_at(3, 0)  # zero slack: nothing valid
        assert action.is_late
        assert action.model == "fast"
        assert action.batch_size == 3

    def test_policy_actions_meet_slack(self, tiny_config):
        """Non-late actions always fit the state's quantized slack."""
        mdp = build_worker_mdp(tiny_config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        for (n, j), action in policy.states().items():
            if action.is_late:
                continue
            model = tiny_config.model_set.get(action.model)
            assert model.latency_ms(action.batch_size) <= mdp.grid[j] + 1e-9

    def test_metadata_propagated(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        meta = policy.metadata
        assert meta.load_qps == 25.0
        assert meta.slo_ms == 100.0
        assert meta.task == "tiny"
        assert meta.batching == "max"
