"""Tests for repro.profiles.latency."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiles.latency import LatencyProfile, LinearLatencyModel


class TestLinearLatencyModel:
    def test_mean_is_affine(self):
        m = LinearLatencyModel(overhead_ms=5.0, per_item_ms=10.0, std_ms=0.0)
        assert m.mean_ms(1) == 15.0
        assert m.mean_ms(4) == 45.0

    def test_p95_above_mean(self):
        m = LinearLatencyModel(overhead_ms=5.0, per_item_ms=10.0, std_ms=10.0)
        assert m.p95_ms(3) > m.mean_ms(3)

    def test_p95_equals_mean_when_deterministic(self):
        m = LinearLatencyModel(overhead_ms=5.0, per_item_ms=10.0, std_ms=0.0)
        assert m.p95_ms(2) == m.mean_ms(2)

    def test_std_capped_for_small_models(self):
        m = LinearLatencyModel(overhead_ms=1.0, per_item_ms=4.0, std_ms=10.0)
        # mean(1) = 5ms; effective std capped at 1ms (20% of mean).
        assert m.effective_std_ms(1) == pytest.approx(1.0)

    def test_sample_positive_and_near_mean(self, rng):
        m = LinearLatencyModel(overhead_ms=10.0, per_item_ms=30.0, std_ms=10.0)
        samples = np.array([m.sample_ms(2, rng) for _ in range(5000)])
        assert (samples > 0).all()
        assert samples.mean() == pytest.approx(m.mean_ms(2), rel=0.05)

    def test_sample_deterministic_when_no_std(self, rng):
        m = LinearLatencyModel(overhead_ms=10.0, per_item_ms=30.0, std_ms=0.0)
        assert m.sample_ms(3, rng) == m.mean_ms(3)

    def test_sample_floored(self, rng):
        m = LinearLatencyModel(overhead_ms=1.0, per_item_ms=1.0, std_ms=10.0)
        samples = [m.sample_ms(1, rng) for _ in range(2000)]
        assert min(samples) >= 0.25 * m.mean_ms(1) - 1e-12

    def test_invalid_batch_rejected(self):
        m = LinearLatencyModel(overhead_ms=1.0, per_item_ms=1.0)
        with pytest.raises(ProfileError):
            m.mean_ms(0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinearLatencyModel(overhead_ms=-1.0, per_item_ms=1.0)
        with pytest.raises(ValueError):
            LinearLatencyModel(overhead_ms=0.0, per_item_ms=0.0)

    def test_tabulate_matches_p95(self):
        m = LinearLatencyModel(overhead_ms=5.0, per_item_ms=10.0, std_ms=3.0)
        profile = m.tabulate(4)
        for b in range(1, 5):
            assert profile.latency_ms(b) == pytest.approx(m.p95_ms(b))


class TestLatencyProfile:
    def test_lookup(self):
        p = LatencyProfile(p95_ms_by_batch={1: 10.0, 2: 18.0, 3: 26.0})
        assert p.max_batch_size == 3
        assert p.latency_ms(2) == 18.0

    def test_rejects_gaps(self):
        with pytest.raises(ProfileError):
            LatencyProfile(p95_ms_by_batch={1: 10.0, 3: 30.0})

    def test_rejects_missing_batch_one(self):
        with pytest.raises(ProfileError):
            LatencyProfile(p95_ms_by_batch={2: 10.0, 3: 30.0})

    def test_rejects_decreasing(self):
        with pytest.raises(ProfileError):
            LatencyProfile(p95_ms_by_batch={1: 10.0, 2: 9.0})

    def test_rejects_nonpositive(self):
        with pytest.raises(ProfileError):
            LatencyProfile(p95_ms_by_batch={1: 0.0})

    def test_rejects_empty(self):
        with pytest.raises(ProfileError):
            LatencyProfile(p95_ms_by_batch={})

    def test_out_of_range_batch(self):
        p = LatencyProfile(p95_ms_by_batch={1: 10.0})
        with pytest.raises(ProfileError):
            p.latency_ms(2)
        with pytest.raises(ProfileError):
            p.latency_ms(0)

    def test_max_batch_within(self):
        p = LatencyProfile(p95_ms_by_batch={1: 10.0, 2: 20.0, 3: 30.0})
        assert p.max_batch_within(25.0) == 2
        assert p.max_batch_within(5.0) is None
        assert p.max_batch_within(100.0) == 3

    def test_throughput(self):
        p = LatencyProfile(p95_ms_by_batch={1: 10.0, 2: 15.0})
        assert p.throughput_qps(1) == pytest.approx(100.0)
        assert p.throughput_qps(2) == pytest.approx(2 / 15.0 * 1000.0)

    def test_peak_throughput_respects_budget(self):
        p = LatencyProfile(p95_ms_by_batch={1: 10.0, 2: 15.0, 3: 40.0})
        assert p.peak_throughput_qps(budget_ms=16.0) == pytest.approx(
            2 / 15.0 * 1000.0
        )
        assert p.peak_throughput_qps(budget_ms=5.0) == 0.0

    def test_as_dict_roundtrip(self):
        table = {1: 10.0, 2: 20.0}
        assert LatencyProfile(p95_ms_by_batch=table).as_dict() == table
