"""Property-based tests on the simulator and metrics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.traces import LoadTrace
from repro.core.policy import Action
from repro.selectors.base import ModelSelector, QueueScope
from repro.sim.simulator import Simulation, SimulationConfig
from tests.conftest import make_tiny_model_set


class RandomishSelector(ModelSelector):
    """Deterministic but state-varying selector for property tests."""

    def __init__(self, scope: QueueScope, cap: int) -> None:
        self.queue_scope = scope
        self._cap = cap
        self._names = ("fast", "medium", "slow")
        self._tick = 0
        self.name = "randomish"

    def select(self, queue_length, earliest_slack_ms, now_ms, anticipated_load_qps):
        self._tick += 1
        model = self._names[self._tick % 3]
        batch = 1 + (self._tick % min(self._cap, queue_length))
        return Action(model=model, batch_size=min(batch, queue_length))


arrival_arrays = st.lists(
    st.floats(min_value=0.0, max_value=5_000.0),
    min_size=1,
    max_size=60,
).map(lambda xs: np.sort(np.asarray(xs, dtype=np.float64)))


class TestConservationProperties:
    @given(
        arrivals=arrival_arrays,
        workers=st.integers(1, 4),
        scope=st.sampled_from([QueueScope.PER_WORKER, QueueScope.CENTRAL]),
        slo=st.floats(min_value=20.0, max_value=500.0),
        cap=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_arrival_completes_once(self, arrivals, workers, scope, slo, cap):
        models = make_tiny_model_set()
        sim = Simulation(
            SimulationConfig(
                model_set=models, slo_ms=slo, num_workers=workers, seed=1
            )
        )
        metrics = sim.run(
            RandomishSelector(scope, cap),
            LoadTrace.constant(1.0, 6_000.0),
            arrival_times=arrivals,
        )
        assert metrics.total_queries == arrivals.shape[0]
        assert sum(metrics.model_query_counts.values()) == arrivals.shape[0]

    @given(
        arrivals=arrival_arrays,
        workers=st.integers(1, 3),
        drop=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_metrics_are_well_formed(self, arrivals, workers, drop):
        models = make_tiny_model_set()
        sim = Simulation(
            SimulationConfig(
                model_set=models,
                slo_ms=60.0,
                num_workers=workers,
                drop_late=drop,
                seed=2,
            )
        )
        from repro.selectors import GreedyDeadlineSelector

        metrics = sim.run(
            GreedyDeadlineSelector(),
            LoadTrace.constant(1.0, 6_000.0),
            arrival_times=arrivals,
        )
        assert 0.0 <= metrics.violation_rate <= 1.0
        assert 0.0 <= metrics.accuracy_per_satisfied_query <= 1.0
        assert metrics.satisfied_queries <= metrics.total_queries
        assert metrics.mean_response_ms >= 0.0
        assert metrics.total_queries == arrivals.shape[0]

    @given(arrivals=arrival_arrays, workers=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_responses_at_least_service_time(self, arrivals, workers):
        """No query can finish faster than the fastest single-query run."""
        models = make_tiny_model_set()
        from repro.selectors import GreedyDeadlineSelector

        sim = Simulation(
            SimulationConfig(
                model_set=models, slo_ms=100.0, num_workers=workers, seed=3
            )
        )
        metrics = sim.run(
            GreedyDeadlineSelector(),
            LoadTrace.constant(1.0, 6_000.0),
            arrival_times=arrivals,
        )
        floor = min(m.latency_ms(1) for m in models)
        assert metrics.p50_response_ms >= floor - 1e-9


class TestMonotonicityProperties:
    @given(slo=st.floats(min_value=30.0, max_value=200.0))
    @settings(max_examples=20, deadline=None)
    def test_looser_slo_never_more_violations(self, slo):
        """Same workload and decisions: a looser SLO cannot violate more."""
        models = make_tiny_model_set()
        from repro.selectors import FixedModelSelector

        rng = np.random.default_rng(9)
        arrivals = np.sort(rng.uniform(0.0, 10_000.0, size=300))

        def violations(s):
            sim = Simulation(
                SimulationConfig(
                    model_set=models, slo_ms=s, num_workers=2, seed=4
                )
            )
            # Fixed budget so decisions do not change with the SLO.
            selector = FixedModelSelector("fast", batch_budget_ms=40.0)
            return sim.run(
                selector, LoadTrace.constant(30.0, 10_000.0), arrival_times=arrivals
            ).violation_rate

        assert violations(slo * 1.5) <= violations(slo) + 1e-9
