"""Tests for the tracing core (repro.obs.trace)."""

import time

from repro.obs.trace import NULL_TRACER, NullTracer, RecordingTracer, Tracer


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.complete("x", "t", 0.0, 1.0)
        tracer.instant("x", "t", 0.0)
        tracer.counter("x", "t", 0.0, 1.0)
        with tracer.span("phase"):
            pass

    def test_shared_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False

    def test_base_class_is_noop(self):
        tracer = Tracer()
        assert tracer.enabled is False
        tracer.instant("x", "t", 0.0)

    def test_overhead_smoke(self):
        """The disabled-path guard is a single attribute check: a million
        guarded no-ops must take well under a second."""
        tracer = NULL_TRACER
        start = time.perf_counter()
        hits = 0
        for _ in range(1_000_000):
            if tracer.enabled:
                hits += 1
        elapsed = time.perf_counter() - start
        assert hits == 0
        assert elapsed < 1.0


class TestRecordingTracer:
    def test_complete_span_recorded(self):
        tracer = RecordingTracer()
        assert tracer.enabled is True
        tracer.complete("serve", "worker-0", 10.0, 5.0, args={"batch": 3})
        (span,) = tracer.spans
        assert span.name == "serve"
        assert span.track == "worker-0"
        assert span.start_ms == 10.0
        assert span.end_ms == 15.0
        assert span.args["batch"] == 3

    def test_instant_and_counter_events(self):
        tracer = RecordingTracer()
        tracer.instant("arrival", "balancer", 1.0, args={"query": 7})
        tracer.counter("queue_depth", "worker-0", 2.0, 4)
        instant, counter = tracer.events
        assert not instant.is_counter
        assert instant.args == {"query": 7}
        assert counter.is_counter
        assert counter.value == 4.0

    def test_span_nesting_parent_links(self):
        tracer = RecordingTracer()
        with tracer.span("outer", track="gen"):
            with tracer.span("inner", track="gen"):
                pass
            with tracer.span("inner2", track="gen"):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner2"].parent_id == spans["outer"].span_id

    def test_span_nesting_containment(self):
        tracer = RecordingTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in tracer.spans}
        outer, inner = spans["outer"], spans["inner"]
        assert outer.start_ms <= inner.start_ms
        assert inner.end_ms <= outer.end_ms + 1e-6

    def test_nesting_is_per_track(self):
        tracer = RecordingTracer()
        with tracer.span("a", track="t1"):
            with tracer.span("b", track="t2"):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["b"].parent_id is None  # different track, no parent

    def test_tracks_sorted(self):
        tracer = RecordingTracer()
        tracer.instant("x", "worker-1", 0.0)
        tracer.instant("x", "balancer", 0.0)
        tracer.complete("x", "worker-0", 0.0, 1.0)
        assert tracer.tracks() == ["balancer", "worker-0", "worker-1"]

    def test_clear(self):
        tracer = RecordingTracer()
        tracer.instant("x", "t", 0.0)
        tracer.complete("x", "t", 0.0, 1.0)
        tracer.clear()
        assert tracer.spans == ()
        assert tracer.events == ()

    def test_span_exception_still_recorded(self):
        tracer = RecordingTracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans] == ["failing"]
