"""Tests for simulator components: queries, latency models, monitor, metrics."""

import numpy as np
import pytest

from repro.arrivals.traces import LoadTrace
from repro.sim.latency_model import DeterministicLatency, StochasticLatency
from repro.sim.metrics import MetricsCollector
from repro.sim.monitor import LoadMonitor, OracleLoadMonitor
from repro.sim.queries import Query


class TestQuery:
    def test_deadline_assignment(self):
        q = Query.create(7, arrival_ms=100.0, slo_ms=150.0)
        assert q.deadline_ms == 250.0
        assert q.query_id == 7

    def test_slack(self):
        q = Query.create(0, 100.0, 150.0)
        assert q.slack_at(100.0) == 150.0
        assert q.slack_at(260.0) == -10.0

    def test_ordering_by_deadline(self):
        early = Query.create(1, 0.0, 100.0)
        late = Query.create(0, 50.0, 100.0)
        assert early < late

    def test_ordering_tiebreak_by_id(self):
        a = Query.create(1, 0.0, 100.0)
        b = Query.create(2, 0.0, 100.0)
        assert a < b


class TestLatencyModels:
    def test_deterministic_returns_p95(self, tiny_models):
        model = tiny_models.get("medium")
        lm = DeterministicLatency()
        assert lm.execution_ms(model, 3) == model.latency_ms(3)

    def test_stochastic_seeded(self, image_models):
        model = image_models.get("efficientnet_b2")
        a = StochasticLatency(seed=5)
        b = StochasticLatency(seed=5)
        assert a.execution_ms(model, 2) == b.execution_ms(model, 2)

    def test_stochastic_usually_below_p95(self, image_models):
        """§7.3.1: real executions usually beat the planned p95."""
        model = image_models.get("efficientnet_b2")
        lm = StochasticLatency(seed=9)
        draws = [lm.execution_ms(model, 1) for _ in range(2000)]
        below = sum(d <= model.latency_ms(1) for d in draws) / len(draws)
        assert below == pytest.approx(0.95, abs=0.02)

    def test_clone_restarts_stream(self, image_models):
        """A clone at seed s matches a fresh instance at seed s, regardless
        of how far the original's stream has advanced."""
        model = image_models.get("efficientnet_b2")
        original = StochasticLatency(seed=5)
        original.execution_ms(model, 1)  # advance the original's stream
        clone = original.clone(seed=5)
        fresh = StochasticLatency(seed=5)
        assert clone.execution_ms(model, 1) == fresh.execution_ms(model, 1)


class TestLoadMonitor:
    def test_empty_monitor_reports_zero(self):
        assert LoadMonitor().anticipated_load_qps(100.0) == 0.0

    def test_counts_within_window(self):
        m = LoadMonitor(window_ms=500.0)
        for t in np.arange(0.0, 500.0, 10.0):  # 100 QPS
            m.record_arrival(float(t))
        assert m.anticipated_load_qps(500.0) == pytest.approx(100.0, rel=0.05)

    def test_evicts_old_arrivals(self):
        m = LoadMonitor(window_ms=500.0)
        for t in np.arange(0.0, 500.0, 10.0):
            m.record_arrival(float(t))
        assert m.anticipated_load_qps(2_000.0) == 0.0

    def test_early_estimates_unbiased(self):
        """Before a full window elapses, divide by elapsed time."""
        m = LoadMonitor(window_ms=500.0)
        for t in np.arange(0.0, 100.0, 10.0):  # 100 QPS for 100 ms
            m.record_arrival(float(t))
        assert m.anticipated_load_qps(100.0) == pytest.approx(100.0, rel=0.05)

    def test_reset(self):
        m = LoadMonitor()
        m.record_arrival(1.0)
        m.reset()
        assert m.anticipated_load_qps(2.0) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LoadMonitor(window_ms=0.0)

    def test_oracle_reads_trace(self):
        trace = LoadTrace(interval_ms=1_000.0, qps=(10.0, 90.0))
        m = OracleLoadMonitor(trace)
        assert m.anticipated_load_qps(500.0) == 10.0
        assert m.anticipated_load_qps(1_500.0) == 90.0
        # Clamped at the trace edge rather than raising.
        assert m.anticipated_load_qps(5_000.0) == 90.0


class TestMetricsCollector:
    def test_aggregates(self):
        c = MetricsCollector()
        c.record_decision(2)
        c.record_completion("m", 0.8, 50.0, satisfied=True)
        c.record_completion("m", 0.8, 200.0, satisfied=False)
        c.record_decision(1)
        c.record_completion("n", 0.6, 70.0, satisfied=True)
        m = c.finalize()
        assert m.total_queries == 3
        assert m.satisfied_queries == 2
        assert m.violation_rate == pytest.approx(1 / 3)
        assert m.accuracy_per_satisfied_query == pytest.approx(0.7)
        assert m.mean_batch_size == pytest.approx(1.5)
        assert m.model_query_counts == {"m": 2, "n": 1}

    def test_empty_finalize(self):
        m = MetricsCollector().finalize()
        assert m.total_queries == 0
        assert m.violation_rate == 0.0
        assert m.accuracy_per_satisfied_query == 0.0

    def test_percentiles(self):
        c = MetricsCollector()
        for r in range(1, 101):
            c.record_completion("m", 0.5, float(r), satisfied=True)
        m = c.finalize()
        assert m.p50_response_ms == pytest.approx(50.5)
        assert m.p99_response_ms == pytest.approx(99.01, abs=0.5)

    def test_untracked_responses_fall_back_to_mean(self):
        c = MetricsCollector(track_responses=False)
        c.record_completion("m", 0.5, 10.0, satisfied=True)
        c.record_completion("m", 0.5, 30.0, satisfied=True)
        m = c.finalize()
        assert m.p99_response_ms == pytest.approx(20.0)

    def test_model_share(self):
        c = MetricsCollector()
        c.record_completion("a", 0.5, 1.0, True)
        c.record_completion("b", 0.5, 1.0, True)
        c.record_completion("b", 0.5, 1.0, False)
        share = c.finalize().model_share()
        assert share == {"a": pytest.approx(1 / 3), "b": pytest.approx(2 / 3)}

    def test_summary_string(self):
        c = MetricsCollector()
        c.record_completion("m", 0.5, 10.0, True)
        assert "queries=1" in c.finalize().summary()
