"""Smoke-scale executions of every figure/table driver.

Each test runs the full driver at SMOKE scale and checks the structural
invariants of its output (coverage, rendering) rather than paper numbers —
the benchmarks regenerate the numbers at DEFAULT scale.
"""

import pytest

from repro.experiments.appendix import (
    render_appendix_h,
    render_appendix_i,
    render_fig12,
    render_variant_sweep,
    run_appendix_h,
    run_appendix_i,
    run_fig10,
    run_fig11,
    run_fig12,
)
from repro.experiments.fig5 import production_trace, render_fig5, run_fig5
from repro.experiments.fig6 import render_fig6, run_fig6
from repro.experiments.fig7 import render_fig7, run_fig7
from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.runner import clear_caches
from repro.experiments.scale import ExperimentScale
from repro.experiments.tables import (
    render_table2,
    render_table3,
    render_table4,
    run_table2,
)
from repro.experiments.tasks import image_task


@pytest.fixture(scope="module")
def smoke():
    clear_caches()
    return ExperimentScale.smoke()


class TestProductionTrace:
    def test_scaled_down_envelope(self, smoke):
        trace = production_trace(smoke)
        assert trace.peak_qps == pytest.approx(3905.0 / smoke.cluster_scale)
        assert trace.duration_ms == smoke.trace_duration_s * 1000.0


class TestFig5:
    def test_runs_and_renders(self, smoke):
        result = run_fig5(
            scale=smoke, tasks=[image_task()], methods=("RAMSIS", "JF"),
            slos_per_task=1,
        )
        expected = len(smoke.worker_counts) * 2
        assert len(result.points) == expected
        text = render_fig5(result)
        assert "Figure 5" in text
        assert "RAMSIS" in text

    def test_series_extraction(self, smoke):
        result = run_fig5(
            scale=smoke, tasks=[image_task()], methods=("RAMSIS",),
            slos_per_task=1,
        )
        series = result.series("image", 150.0, "RAMSIS")
        workers = [w for w, _ in series]
        assert workers == sorted(workers)


class TestFig6:
    def test_runs_and_renders(self, smoke):
        result = run_fig6(
            scale=smoke, tasks=[image_task()], methods=("RAMSIS", "MS"),
            slos_per_task=1,
        )
        assert len(result.points) == len(smoke.constant_loads_qps) * 2
        assert "Figure 6" in render_fig6(result)

    def test_accuracy_declines_with_load(self, smoke):
        result = run_fig6(
            scale=smoke, tasks=[image_task()], methods=("RAMSIS",),
            slos_per_task=1,
        )
        series = result.series("image", 150.0, "RAMSIS")
        if len(series) >= 2:
            assert series[0][1] >= series[-1][1] - 0.02


class TestFig7:
    def test_three_variants_per_cell(self, smoke):
        result = run_fig7(scale=smoke, loads_qps=(20.0, 50.0))
        variants = {p.variant for p in result.points}
        assert variants == {"expectation", "simulation", "implementation"}
        expected = len(smoke.fidelity_worker_counts) * 2 * 3
        assert len(result.points) == expected
        assert "Figure 7" in render_fig7(result)

    def test_implementation_at_least_simulation_accuracy(self, smoke):
        """§7.3.1: stochastic execution usually helps accuracy."""
        result = run_fig7(scale=smoke, loads_qps=(20.0,))
        for workers in smoke.fidelity_worker_counts:
            sim = dict(
                (load, acc) for load, acc, _ in result.series("simulation", workers)
            )
            impl = dict(
                (load, acc)
                for load, acc, _ in result.series("implementation", workers)
            )
            for load in sim:
                assert impl[load] >= sim[load] - 0.03


class TestFig8:
    def test_runs_and_renders(self, smoke):
        result = run_fig8(scale=smoke, synthetic_count=20)
        counts = {c for _, c, _ in result.points}
        assert counts == {9, 20}
        assert "Figure 8" in render_fig8(result)


class TestAppendixDrivers:
    def test_fig10_variants(self, smoke):
        points = run_fig10(
            scale=smoke, resolutions=(2, 10), loads_qps=(20.0,)
        )
        assert {p.variant for p in points} == {"FLD D=2", "FLD D=10", "MD"}
        assert "load" in render_variant_sweep(points, "Fig 10")

    def test_fig10_md_at_least_as_good_as_coarse_fld(self, smoke):
        points = run_fig10(scale=smoke, resolutions=(2,), loads_qps=(20.0,))
        by_variant = {p.variant: p for p in points}
        assert (
            by_variant["MD"].accuracy >= by_variant["FLD D=2"].accuracy - 0.02
        )

    def test_fig11_batching_variants(self, smoke):
        points = run_fig11(scale=smoke, loads_qps=(20.0,))
        assert {p.variant for p in points} == {"maximal", "variable"}
        # Appendix D: near-identical accuracy.
        by_variant = {p.variant: p for p in points}
        assert by_variant["variable"].accuracy == pytest.approx(
            by_variant["maximal"].accuracy, abs=0.05
        )

    def test_fig12_labels(self, smoke):
        points = run_fig12(scale=smoke, loads_qps=(20.0,))
        labels = {p.method for p in points}
        assert labels == {
            "RAMSIS (26 models)",
            "JF+ (26 models)",
            "RAMSIS (3 models)",
            "JF+ (3 models)",
        }
        assert "Figure 12" in render_fig12(points)

    def test_appendix_h_infaas_never_beats_ramsis(self, smoke):
        points = run_appendix_h(scale=smoke, loads_qps=(20.0,))
        ramsis = [p for label, p in points if label == "RAMSIS"][0]
        infaas_accs = [
            p.accuracy
            for label, p in points
            if label.startswith("INFaaS") and p.plottable
        ]
        assert all(a <= ramsis.accuracy + 0.02 for a in infaas_accs)
        assert "Appendix H" in render_appendix_h(points)

    def test_appendix_i_both_balancers_run(self, smoke):
        points = run_appendix_i(scale=smoke, loads_qps=(20.0,))
        labels = {label for label, _ in points}
        assert labels == {"round-robin", "shortest-queue"}
        assert "Appendix I" in render_appendix_i(points)


class TestTable2:
    def test_strategy_grid(self, smoke):
        rows = run_table2(scale=smoke, include_variable=False)
        strategies = {(r.discretization, r.batching) for r in rows}
        assert ("FLD D=10", "max") in strategies
        assert ("MD", "max") in strategies
        assert {r.model_count for r in rows} == {9, 60}
        assert "Table 2" in render_table2(rows)

    def test_fld10_faster_than_fld100(self, smoke):
        rows = run_table2(scale=smoke, include_variable=False)

        def runtime(disc, count):
            return [
                r.runtime_s
                for r in rows
                if r.discretization == disc and r.model_count == count
            ][0]

        assert runtime("FLD D=10", 60) < runtime("FLD D=100", 60)


class TestTables34:
    def test_render_from_figure_results(self, smoke):
        fig5 = run_fig5(
            scale=smoke, tasks=[image_task()], methods=("RAMSIS",),
            slos_per_task=1,
        )
        assert "Table 3" in render_table3(fig5)
        fig6 = run_fig6(
            scale=smoke, tasks=[image_task()], methods=("RAMSIS",),
            slos_per_task=1,
        )
        assert "Table 4" in render_table4(fig6)
