"""Tests for slack-time discretization (MD and FLD, §4.2)."""

import pytest

from repro.core.discretization import TimeGrid, fixed_length_grid, model_based_grid
from repro.errors import ConfigurationError


class TestTimeGrid:
    def test_requires_zero_start(self):
        with pytest.raises(ConfigurationError):
            TimeGrid(values=(1.0, 2.0), slo_ms=2.0)

    def test_requires_slo_end(self):
        with pytest.raises(ConfigurationError):
            TimeGrid(values=(0.0, 1.0), slo_ms=2.0)

    def test_requires_strictly_increasing(self):
        with pytest.raises(ConfigurationError):
            TimeGrid(values=(0.0, 1.0, 1.0, 2.0), slo_ms=2.0)

    def test_floor_index_basics(self):
        g = TimeGrid(values=(0.0, 10.0, 20.0, 50.0), slo_ms=50.0)
        assert g.floor_index(0.0) == 0
        assert g.floor_index(9.99) == 0
        assert g.floor_index(10.0) == 1
        assert g.floor_index(49.0) == 2
        assert g.floor_index(50.0) == 3

    def test_floor_index_clamps(self):
        g = TimeGrid(values=(0.0, 10.0), slo_ms=10.0)
        assert g.floor_index(-5.0) == 0
        assert g.floor_index(1e9) == 1

    def test_floor_never_overestimates(self):
        """The §5.1 conservatism property: grid value <= real slack."""
        g = fixed_length_grid(100.0, 7)
        for slack in [0.0, 3.3, 14.28, 14.29, 57.1, 99.9, 100.0]:
            assert g[g.floor_index(slack)] <= slack + 1e-9

    def test_upper_bounds(self):
        g = TimeGrid(values=(0.0, 10.0, 50.0), slo_ms=50.0)
        assert g.upper(0) == 10.0
        assert g.upper(1) == 50.0
        assert g.upper(2) == 50.0  # top bin has zero width
        with pytest.raises(IndexError):
            g.upper(3)

    def test_slo_index(self):
        g = fixed_length_grid(100.0, 4)
        assert g[g.slo_index] == 100.0


class TestFixedLengthGrid:
    def test_size_is_resolution_plus_one(self):
        assert len(fixed_length_grid(100.0, 10)) == 11

    def test_even_spacing(self):
        g = fixed_length_grid(100.0, 4)
        assert g.values == (0.0, 25.0, 50.0, 75.0, 100.0)

    def test_d1_is_endpoints(self):
        assert fixed_length_grid(100.0, 1).values == (0.0, 100.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            fixed_length_grid(0.0, 10)
        with pytest.raises(ConfigurationError):
            fixed_length_grid(100.0, 0)


class TestModelBasedGrid:
    def test_contains_all_relevant_latencies(self, tiny_models):
        g = model_based_grid(tiny_models, slo_ms=100.0, max_batch_size=4)
        for model in tiny_models:
            for b in range(1, 5):
                latency = model.latency_ms(b)
                if latency <= 100.0:
                    assert latency in g.values

    def test_excludes_latencies_beyond_slo(self, tiny_models):
        g = model_based_grid(tiny_models, slo_ms=100.0, max_batch_size=4)
        assert all(v <= 100.0 for v in g.values)

    def test_always_contains_endpoints(self, tiny_models):
        g = model_based_grid(tiny_models, slo_ms=100.0, max_batch_size=4)
        assert g.values[0] == 0.0
        assert g.values[-1] == 100.0

    def test_size_bounded_by_models_times_batches(self, tiny_models):
        g = model_based_grid(tiny_models, slo_ms=100.0, max_batch_size=4)
        assert len(g) <= len(tiny_models) * 4 + 2

    def test_dedupes_identical_latencies(self):
        from tests.conftest import make_tiny_model_set

        models = make_tiny_model_set()
        g = model_based_grid(models, slo_ms=100.0, max_batch_size=2)
        assert len(set(g.values)) == len(g.values)

    def test_action_validity_exactness(self, tiny_models):
        """MD never under-estimates slack at an action-latency boundary:
        for any slack equal to a latency, the grid value equals it."""
        g = model_based_grid(tiny_models, slo_ms=100.0, max_batch_size=4)
        latency = tiny_models.get("medium").latency_ms(2)
        assert g[g.floor_index(latency)] == latency
