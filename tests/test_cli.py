"""Tests for the artifact-style CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "gen", "ms-gen", "simulate", "report", "trace", "synth-trace",
            "zoo", "audit", "serve",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestZoo:
    def test_prints_pareto_markers(self, capsys):
        assert main(["zoo", "--task", "image"]) == 0
        out = capsys.readouterr().out
        assert "26 models" in out
        assert "shufflenet_v2_x0_5" in out
        assert "*" in out

    def test_text_task(self, capsys):
        assert main(["zoo", "--task", "text"]) == 0
        assert "bert_base" in capsys.readouterr().out


class TestSynthTrace:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "trace.txt"
        assert main(["synth-trace", "--out", str(out), "--duration", "60"]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 6
        # Progress messages go through repro.obs.log to stderr; stdout is
        # reserved for result tables.
        assert "trace written" in capsys.readouterr().err


class TestGen:
    def test_writes_policy_json(self, tmp_path, capsys):
        code = main(
            [
                "gen",
                "--task",
                "image",
                "--slo",
                "150",
                "--workers",
                "2",
                "--load",
                "40",
                "--fld-resolution",
                "12",
                "--out",
                str(tmp_path / "pol"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "script complete!" in captured.err
        assert "expected accuracy" in captured.out
        policy_file = tmp_path / "pol" / "RAMSIS_2_150" / "40.json"
        assert policy_file.exists()
        payload = json.loads(policy_file.read_text())
        assert payload["metadata"]["load_qps"] == 40.0

    def test_stacked_solver_generates_grid(self, tmp_path, capsys):
        code = main(
            [
                "gen",
                "--task",
                "image",
                "--slo",
                "150",
                "--workers",
                "2",
                "--loads",
                "30",
                "40",
                "50",
                "60",
                "--solver",
                "stacked",
                "--no-cache",
                "--fld-resolution",
                "12",
                "--out",
                str(tmp_path / "pol"),
            ]
        )
        assert code == 0
        assert "script complete!" in capsys.readouterr().err
        out_dir = tmp_path / "pol" / "RAMSIS_2_150"
        assert sorted(p.name for p in out_dir.glob("*.json")) == [
            "30.json", "40.json", "50.json", "60.json",
        ]

    def test_stacked_solver_rejects_jobs(self, tmp_path):
        with pytest.raises(SystemExit, match="stacked"):
            main(
                [
                    "gen",
                    "--task",
                    "image",
                    "--loads",
                    "30",
                    "40",
                    "--solver",
                    "stacked",
                    "--jobs",
                    "2",
                    "--no-cache",
                    "--out",
                    str(tmp_path / "pol"),
                ]
            )


class TestSimulateAndReport:
    def test_constant_roundtrip(self, tmp_path, capsys):
        results = tmp_path / "results"
        for method in ("RAMSIS", "JF"):
            code = main(
                [
                    "simulate",
                    "--m",
                    method,
                    "--trace",
                    "constant",
                    "--task",
                    "image",
                    "--load",
                    "40",
                    "--workers",
                    "2",
                    "--scale",
                    "smoke",
                    "--results-dir",
                    str(results),
                ]
            )
            assert code == 0
        files = list(results.glob("*.json"))
        assert len(files) == 2
        assert main(["report", "--trace", "constant", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "RAMSIS" in out and "JF" in out

    def test_report_empty_dir(self, tmp_path, capsys):
        assert main(["report", "--results-dir", str(tmp_path)]) == 1
        assert "no results" in capsys.readouterr().out

    def test_bad_task_rejected(self):
        with pytest.raises(SystemExit):
            main(["zoo", "--task", "audio"])

    def test_bad_scale_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--m",
                    "RAMSIS",
                    "--trace",
                    "constant",
                    "--load",
                    "10",
                    "--workers",
                    "1",
                    "--scale",
                    "galactic",
                    "--results-dir",
                    str(tmp_path),
                ]
            )


class TestServe:
    def test_unpaced_smoke_with_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(
            [
                "serve",
                "--load", "30",
                "--duration", "3",
                "--shards", "2",
                "--workers", "2",
                "--time-scale", "0.01",
                "--unpaced",
                "--run-dir", str(run_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards x 2 workers" in out
        assert "served=" in out
        # Merged artifacts for ramsis report/explain, plus shard feeds.
        for name in ("merged.jsonl", "metrics.json", "attribution.json"):
            assert (run_dir / name).is_file()
        assert sorted(run_dir.glob("shard-*.jsonl"))
        # The merged feed drives the standard run report unchanged.
        assert main(["report", "--run-dir", str(run_dir)]) == 0
        report = capsys.readouterr().out
        assert "reconstructed from merged.jsonl" in report

    def test_audited_serve_is_clean(self, capsys):
        code = main(
            [
                "serve",
                "--load", "25",
                "--duration", "3",
                "--shards", "2",
                "--workers", "1",
                "--time-scale", "0.01",
                "--unpaced",
                "--audit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard 0 audit: violation_breaches=0" in out
        assert "shard 1 audit: violation_breaches=0" in out

    def test_admission_flags_reported(self, capsys):
        code = main(
            [
                "serve",
                "--load", "600",
                "--duration", "2",
                "--shards", "1",
                "--workers", "2",
                "--time-scale", "0.01",
                "--unpaced",
                "--max-queue-depth", "2",
                "--drop-late",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rejected=" in out and "dropped=" in out
