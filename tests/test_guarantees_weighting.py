"""Focused tests on the §5.1 guarantee weightings and edge regimes."""

import pytest
from dataclasses import replace

from repro.arrivals.distributions import DeterministicArrivals, PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.core.guarantees import evaluate_policy
from repro.core.mdp import build_worker_mdp
from repro.core.solvers import value_iteration


class TestWeightingVariants:
    def test_per_epoch_and_per_query_both_reported(self, tiny_config):
        g = generate_policy(tiny_config).guarantees
        # They weight differently but live in the same band.
        assert abs(g.expected_accuracy - g.per_epoch_accuracy) < 0.2
        assert abs(g.expected_violation_rate - g.per_epoch_violation_rate) < 0.5

    def test_weightings_agree_with_unit_batches(self, tiny_models):
        """When every decision serves exactly one query (max_queue = 1),
        per-query and per-epoch weightings coincide."""
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(5.0),
            max_queue=1,
            max_batch_size=1,
            fld_resolution=8,
        )
        mdp = build_worker_mdp(config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        g = evaluate_policy(mdp, policy)
        # FULL state (batch = 1 there too) keeps the equality exact.
        assert g.expected_accuracy == pytest.approx(g.per_epoch_accuracy, abs=1e-9)
        assert g.expected_violation_rate == pytest.approx(
            g.per_epoch_violation_rate, abs=1e-9
        )


class TestRegimes:
    def test_deterministic_arrivals_zero_violations(self, tiny_models):
        """Perfectly regular arrivals well under capacity: the §5.1 bound
        itself should be (near) zero."""
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=DeterministicArrivals(10.0),  # gap 100 ms >> service
            max_batch_size=8,
            fld_resolution=10,
        )
        g = generate_policy(config).guarantees
        assert g.expected_violation_rate < 0.01
        # Plenty of slack: the most accurate feasible model dominates.
        assert g.expected_accuracy > 0.85

    def test_burstier_arrivals_lower_accuracy_bound(self, tiny_models):
        """At the same load, a burstier inter-arrival pattern forces a more
        conservative policy — the paper's core premise inverted."""
        from repro.arrivals.distributions import GammaArrivals

        def accuracy(shape):
            config = WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=GammaArrivals(30.0, shape=shape),
                max_batch_size=8,
                fld_resolution=10,
            )
            return generate_policy(config).guarantees.expected_accuracy

        assert accuracy(4.0) >= accuracy(0.5) - 0.01

    def test_discount_affects_farsightedness(self, tiny_config):
        """A near-myopic policy is at most as safe as a far-sighted one."""
        myopic = generate_policy(replace(tiny_config, discount=0.05)).guarantees
        farsighted = generate_policy(
            replace(tiny_config, discount=0.99)
        ).guarantees
        assert farsighted.expected_violation_rate <= (
            myopic.expected_violation_rate + 0.02
        )

    def test_full_probability_grows_with_load(self, tiny_config):
        probs = []
        for load in (20.0, 80.0, 300.0):
            g = generate_policy(tiny_config.with_load(load)).guarantees
            probs.append(g.full_state_probability)
        assert probs[0] <= probs[1] + 1e-9 <= probs[2] + 2e-9
