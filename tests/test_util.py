"""Tests for repro._util and the error hierarchy."""

import pytest

from repro import _util
from repro.errors import (
    CapacityError,
    ConfigurationError,
    PolicyError,
    ProfileError,
    ReproError,
    SimulationError,
    SolverError,
    TraceError,
)


class TestConversions:
    def test_qps_to_per_ms(self):
        assert _util.qps_to_per_ms(1000.0) == 1.0
        assert _util.per_ms_to_qps(0.5) == 500.0

    def test_roundtrip(self):
        assert _util.per_ms_to_qps(_util.qps_to_per_ms(123.4)) == pytest.approx(
            123.4
        )


class TestValidators:
    def test_positive(self):
        assert _util.validate_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            _util.validate_positive("x", 0.0)

    def test_non_negative(self):
        assert _util.validate_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            _util.validate_non_negative("x", -1e-9)

    def test_probability(self):
        assert _util.validate_probability("p", 0.5) == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                _util.validate_probability("p", bad)


class TestSortedCheck:
    def test_strictly_increasing(self):
        assert _util.is_sorted_strict([1.0, 2.0, 3.0])
        assert not _util.is_sorted_strict([1.0, 1.0])
        assert not _util.is_sorted_strict([2.0, 1.0])
        assert _util.is_sorted_strict([])


class TestPercentile:
    def test_median(self):
        assert _util.percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolation(self):
        assert _util.percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_endpoints(self):
        data = [5.0, 1.0, 3.0]
        assert _util.percentile(data, 0.0) == 1.0
        assert _util.percentile(data, 100.0) == 5.0

    def test_single_element(self):
        assert _util.percentile([7.0], 99.0) == 7.0

    def test_errors(self):
        with pytest.raises(ValueError):
            _util.percentile([], 50.0)
        with pytest.raises(ValueError):
            _util.percentile([1.0], 101.0)

    def test_matches_numpy(self):
        import numpy as np

        data = [3.1, 0.4, 9.9, 2.2, 7.7, 5.5]
        for q in (10, 37.5, 50, 95, 99):
            assert _util.percentile(data, q) == pytest.approx(
                float(np.percentile(data, q))
            )


class TestMean:
    def test_mean(self):
        assert _util.mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_of_generator(self):
        assert _util.mean(x for x in (4.0, 6.0)) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _util.mean([])


class TestFormatPct:
    def test_format(self):
        assert _util.format_pct(0.01234) == "1.23%"
        assert _util.format_pct(1.0, digits=0) == "100%"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ProfileError,
            PolicyError,
            SolverError,
            TraceError,
            SimulationError,
            CapacityError,
        ):
            assert issubclass(exc, ReproError)
            with pytest.raises(ReproError):
                raise exc("boom")
