"""Extra coverage for the exact round-robin view: variable batching,
phase-marginal counts, and end-to-end policy agreement."""

import numpy as np
import pytest
from dataclasses import replace

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import BatchingMode, TransitionView, WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.core.mdp import build_worker_mdp
from repro.core.solvers import value_iteration


@pytest.fixture
def exact_config(tiny_models):
    return WorkerMDPConfig(
        model_set=tiny_models,
        slo_ms=100.0,
        arrivals=PoissonArrivals(60.0),
        num_workers=2,
        max_batch_size=6,
        fld_resolution=8,
        view=TransitionView.EXACT_ROUND_ROBIN,
    )


class TestExactCountsMarginal:
    def test_counts_sum_to_at_most_one(self, exact_config):
        mdp = build_worker_mdp(exact_config)
        counts = mdp._counts_for(40.0)
        assert counts.min() >= 0.0
        assert counts.sum() <= 1.0 + 1e-9

    def test_counts_mean_matches_per_worker_rate(self, exact_config):
        """Uniform-phase round-robin counts average to rate/K * t."""
        mdp = build_worker_mdp(exact_config)
        latency = 50.0
        counts = mdp._counts_for(latency)
        ks = np.arange(counts.shape[0])
        mean = float((ks * counts).sum())
        expected = 60.0 / 2 / 1000.0 * latency  # 1.5 arrivals
        assert mean == pytest.approx(expected, rel=0.05)

    def test_k1_counts_equal_poisson(self, tiny_models):
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(30.0),
            num_workers=1,
            max_batch_size=6,
            fld_resolution=8,
            view=TransitionView.EXACT_ROUND_ROBIN,
        )
        mdp = build_worker_mdp(config)
        counts = mdp._counts_for(40.0)
        pois = PoissonArrivals(30.0).pmf_vector(counts.shape[0] - 1, 40.0)
        assert np.allclose(counts, pois, atol=1e-10)


class TestExactVariableBatching:
    def test_solves(self, exact_config):
        config = replace(exact_config, batching=BatchingMode.VARIABLE)
        stats = value_iteration(build_worker_mdp(config))
        assert stats.converged

    def test_variable_at_least_maximal(self, exact_config):
        v_max = value_iteration(build_worker_mdp(exact_config)).values
        v_var = value_iteration(
            build_worker_mdp(replace(exact_config, batching=BatchingMode.VARIABLE))
        ).values
        assert (v_var >= v_max - 1e-6).all()


class TestExactPolicyAgreement:
    def test_exact_and_marginal_policies_mostly_agree(self, exact_config):
        """At K = 2 the exact phase conditioning refines the marginal view
        only slightly; the two policies should coincide on the bulk of the
        state space."""
        exact = generate_policy(exact_config, with_guarantees=False).policy
        marginal = generate_policy(
            replace(exact_config, view=TransitionView.ROUND_ROBIN_MARGINAL),
            with_guarantees=False,
        ).policy
        states = exact.states()
        agree = sum(
            1
            for key, action in states.items()
            if marginal.action_at(*key).model == action.model
        )
        assert agree / len(states) > 0.8
