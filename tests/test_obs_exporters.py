"""Tests for the trace/metrics exporters (repro.obs.exporters)."""

import json
import math

from repro.obs.exporters import (
    chrome_trace,
    events_jsonl,
    prometheus_text,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer


def _sample_tracer() -> RecordingTracer:
    tracer = RecordingTracer()
    tracer.instant("arrival", "balancer", 0.5, args={"query": 0})
    tracer.complete(
        "serve", "worker-0", 1.0, 4.0, args={"batch": 2}, category="sim"
    )
    tracer.counter("queue_depth", "worker-0", 5.0, 3)
    tracer.instant("completion", "worker-1", 6.0, args={"satisfied": True})
    return tracer


class TestEventsJsonl:
    def test_lines_are_json_and_time_ordered(self):
        lines = events_jsonl(_sample_tracer())
        records = [json.loads(line) for line in lines]
        assert len(records) == 4
        timestamps = [r["ts_ms"] for r in records]
        assert timestamps == sorted(timestamps)

    def test_record_shapes(self):
        records = [json.loads(line) for line in events_jsonl(_sample_tracer())]
        by_type = {}
        for r in records:
            by_type.setdefault(r["type"], []).append(r)
        (span,) = by_type["span"]
        assert span["name"] == "serve"
        assert span["dur_ms"] == 4.0
        assert span["args"] == {"batch": 2}
        assert "id" in span
        (counter,) = by_type["counter"]
        assert counter["value"] == 3.0
        assert len(by_type["instant"]) == 2

    def test_write_roundtrip(self, tmp_path):
        path = write_events_jsonl(_sample_tracer(), tmp_path / "events.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)


class TestChromeTrace:
    def test_schema_validity(self):
        doc = chrome_trace(_sample_tracer())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert isinstance(events, list)
        for ev in events:
            # Every trace_event record needs these keys.
            assert {"ph", "pid", "tid", "name"} <= set(ev)
            assert ev["ph"] in {"M", "X", "i", "C"}
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], float)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
            if ev["ph"] == "i":
                assert ev["s"] in {"g", "p", "t"}

    def test_metadata_names_every_track(self):
        doc = chrome_trace(_sample_tracer(), process_name="ramsis")
        events = doc["traceEvents"]
        thread_names = {
            ev["args"]["name"]: ev["tid"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert set(thread_names) == {"balancer", "worker-0", "worker-1"}
        # Worker tracks get the lowest tids so they sort to the top.
        assert thread_names["worker-0"] < thread_names["balancer"]
        assert thread_names["worker-1"] < thread_names["balancer"]
        process = [ev for ev in events if ev["name"] == "process_name"]
        assert process[0]["args"]["name"] == "ramsis"

    def test_timestamps_in_microseconds(self):
        doc = chrome_trace(_sample_tracer())
        span = next(ev for ev in doc["traceEvents"] if ev["ph"] == "X")
        assert span["ts"] == 1000.0  # 1.0 ms
        assert span["dur"] == 4000.0  # 4.0 ms

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(_sample_tracer(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestPrometheusText:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("sim_completions_total", help="completed queries").inc(7)
        reg.gauge("sim_load_qps").set(42.5)
        reg.counter("sim_queries_total", labels={"model": "resnet50"}).inc(3)
        hist = reg.histogram("sim_response_ms", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            hist.observe(v)
        return reg

    def test_help_and_type_lines(self):
        text = prometheus_text(self._registry())
        assert "# HELP sim_completions_total completed queries" in text
        assert "# TYPE sim_completions_total counter" in text
        assert "# TYPE sim_load_qps gauge" in text
        assert "# TYPE sim_response_ms histogram" in text

    def test_values_and_labels(self):
        text = prometheus_text(self._registry())
        assert "sim_completions_total 7.0" in text
        assert "sim_load_qps 42.5" in text
        assert 'sim_queries_total{model="resnet50"} 3.0' in text

    def test_histogram_exposition(self):
        lines = prometheus_text(self._registry()).splitlines()
        buckets = [ln for ln in lines if ln.startswith("sim_response_ms_bucket")]
        assert 'sim_response_ms_bucket{le="10"} 1' in buckets
        assert 'sim_response_ms_bucket{le="100"} 2' in buckets
        assert 'sim_response_ms_bucket{le="+Inf"} 3' in buckets
        assert "sim_response_ms_sum 555.0" in lines
        assert "sim_response_ms_count 3" in lines

    def test_histogram_bucket_counts_cumulative(self):
        lines = prometheus_text(self._registry()).splitlines()
        counts = [
            int(ln.rsplit(" ", 1)[1])
            for ln in lines
            if ln.startswith("sim_response_ms_bucket")
        ]
        assert counts == sorted(counts)

    def test_unset_gauge_is_nan(self):
        reg = MetricsRegistry()
        reg.gauge("idle")
        assert "idle NaN" in prometheus_text(reg)

    def test_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total").inc()
        text = prometheus_text(reg)
        assert "weird_name_total 1.0" in text

    def test_write(self, tmp_path):
        path = write_prometheus_text(self._registry(), tmp_path / "m.prom")
        assert "# TYPE" in path.read_text()

    def test_trailing_newline(self):
        assert prometheus_text(self._registry()).endswith("\n")

    def test_inf_formatting_helper(self):
        from repro.obs.exporters import _format_value

        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"


class TestLabelValueEscaping:
    def test_escape_helper_order_backslash_first(self):
        from repro.obs.exporters import _escape_label_value

        assert _escape_label_value('plain') == 'plain'
        assert _escape_label_value('a\\b') == 'a\\\\b'
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value('two\nlines') == 'two\\nlines'
        # Backslash must be escaped before the other rules run, or the
        # backslashes they introduce would be doubled again.
        assert _escape_label_value('\\n') == '\\\\n'
        assert _escape_label_value('\\"') == '\\\\\\"'

    def test_exposition_escapes_hostile_label_values(self):
        reg = MetricsRegistry()
        hostile = 'C:\\tmp "quoted"\nnext'
        reg.counter("requests_total", labels={"path": hostile}).inc()
        text = prometheus_text(reg)
        sample = next(
            ln for ln in text.splitlines() if ln.startswith("requests_total{")
        )
        # One physical line per sample: the newline never reaches the wire.
        assert "\n" not in sample
        assert sample == (
            'requests_total{path="C:\\\\tmp \\"quoted\\"\\nnext"} 1.0'
        )

    def test_histogram_merged_labels_escaped(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "latency_ms", labels={"queue": 'q"1"'}, buckets=(10.0,)
        )
        hist.observe(5.0)
        text = prometheus_text(reg)
        assert 'latency_ms_bucket{queue="q\\"1\\"",le="10"} 1' in text
