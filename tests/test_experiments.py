"""Tests for the experiment harness (scale presets, runner, figures)."""

import pytest

from repro.arrivals.traces import LoadTrace
from repro.experiments import (
    ExperimentScale,
    accuracy_increase_summary,
    build_policy_set,
    build_ramsis_policy,
    format_table,
    image_task,
    modelswitching_table,
    resource_savings_summary,
    run_method,
    text_task,
)
from repro.experiments.runner import MethodPoint, clear_caches, shared_arrivals
from repro.experiments.tasks import TaskSpec, slo_grid_for


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


SMOKE = ExperimentScale.smoke()


class TestScalePresets:
    def test_presets_exist(self):
        for preset in (
            ExperimentScale.smoke(),
            ExperimentScale.default(),
            ExperimentScale.paper(),
        ):
            assert preset.worker_counts
            assert preset.constant_loads_qps

    def test_paper_matches_published_parameters(self):
        paper = ExperimentScale.paper()
        assert paper.worker_counts == tuple(range(20, 101, 10))
        assert paper.constant_loads_qps[0] == 400.0
        assert paper.constant_loads_qps[-1] == 4000.0
        assert paper.constant_workers_image == 60
        assert paper.constant_workers_text == 20
        assert paper.trace_duration_s == 300.0
        assert paper.fld_resolution == 100

    def test_default_preserves_per_worker_load(self):
        default = ExperimentScale.default()
        paper = ExperimentScale.paper()
        ratio_load = paper.constant_loads_qps[0] / default.constant_loads_qps[0]
        ratio_workers = (
            paper.constant_workers_image / default.constant_workers_image
        )
        assert ratio_load == pytest.approx(default.cluster_scale)
        assert ratio_workers == pytest.approx(
            paper.constant_workers_image / default.constant_workers_image
        )

    def test_overrides(self):
        changed = SMOKE.with_overrides(trace_duration_s=5.0)
        assert changed.trace_duration_s == 5.0
        assert SMOKE.trace_duration_s != 5.0 or True  # original frozen

    def test_scaled_trace_qps(self):
        assert ExperimentScale.default().scaled_trace_qps(4000.0) == 400.0


class TestTaskSpecs:
    def test_image_task(self):
        task = image_task()
        assert task.name == "image"
        assert len(task.model_set) == 26
        assert task.slos_ms == (150.0, 300.0, 500.0)
        assert task.middle_slo_ms == 300.0

    def test_text_task(self):
        task = text_task()
        assert task.name == "text"
        assert len(task.model_set) == 5
        assert task.slos_ms == (100.0, 200.0, 300.0)

    def test_slo_grid_rule_custom(self, tiny_models):
        low, mid, high = slo_grid_for(tiny_models)
        # slowest l(1) = 64 -> middle 100, low 50, high 100 (ceil 96).
        assert (low, mid, high) == (50.0, 100.0, 100.0)


class TestRunnerCaching:
    def test_policy_cache_hits(self):
        task = image_task()
        a = build_ramsis_policy(task.model_set, 150.0, 40.0, 2, SMOKE)
        b = build_ramsis_policy(task.model_set, 150.0, 40.0, 2, SMOKE)
        assert a is b

    def test_policy_set_covers_range(self):
        task = image_task()
        ps = build_policy_set(task.model_set, 150.0, 2, 20.0, 60.0, SMOKE)
        assert ps.loads_qps[0] == pytest.approx(20.0)
        assert ps.max_load_qps == pytest.approx(60.0)

    def test_ms_table_cached(self):
        task = image_task()
        a = modelswitching_table(task.model_set, 150.0, 2, 60.0, SMOKE)
        b = modelswitching_table(task.model_set, 150.0, 2, 60.0, SMOKE)
        assert a is b

    def test_shared_arrivals_identical_across_methods(self):
        trace = LoadTrace.constant(30.0, 4_000.0)
        a = shared_arrivals(trace, seed=3)
        b = shared_arrivals(trace, seed=3)
        assert a is b


class TestRunMethod:
    @pytest.mark.parametrize("method", ["RAMSIS", "JF", "MS", "Greedy"])
    def test_methods_execute(self, method):
        task = image_task()
        trace = LoadTrace.constant(40.0, 5_000.0)
        point = run_method(
            method, task, 150.0, 2, trace, SMOKE, oracle_load=True
        )
        assert point.queries > 0
        assert 0.0 <= point.accuracy <= 1.0
        assert 0.0 <= point.violation_rate <= 1.0
        assert point.load_qps == 40.0

    def test_ramsis_beats_jellyfish_at_moderate_load(self):
        """The paper's core claim on one representative cell, under its
        own filter: compare accuracy only where violations stay < 5%."""
        task = image_task()
        trace = LoadTrace.constant(30.0, 20_000.0)
        ramsis = run_method("RAMSIS", task, 150.0, 2, trace, SMOKE, oracle_load=True)
        jf = run_method("JF", task, 150.0, 2, trace, SMOKE, oracle_load=True)
        assert ramsis.plottable
        if jf.plottable:
            assert ramsis.accuracy >= jf.accuracy - 1e-9

    def test_unknown_method_rejected(self):
        from repro.errors import ConfigurationError

        task = image_task()
        trace = LoadTrace.constant(10.0, 1_000.0)
        with pytest.raises(ConfigurationError):
            run_method("Bogus", task, 150.0, 1, trace, SMOKE)


class TestReporting:
    def _points(self):
        mk = lambda m, w, acc, viol: MethodPoint(  # noqa: E731
            task="image",
            method=m,
            slo_ms=150.0,
            num_workers=w,
            load_qps=None,
            accuracy=acc,
            violation_rate=viol,
            queries=100,
        )
        return [
            mk("RAMSIS", 2, 0.75, 0.001),
            mk("RAMSIS", 4, 0.80, 0.001),
            mk("JF", 2, 0.70, 0.002),
            mk("JF", 4, 0.75, 0.002),
            mk("JF", 6, 0.78, 0.2),  # not plottable
        ]

    def test_accuracy_increase(self):
        avg, best = accuracy_increase_summary(self._points(), "JF")
        assert avg == pytest.approx(5.0)
        assert best == pytest.approx(5.0)

    def test_resource_savings(self):
        # JF at 4 workers reaches 0.75; RAMSIS reaches 0.75 at 2 workers.
        avg, best = resource_savings_summary(self._points(), "JF")
        assert best == pytest.approx(0.5)

    def test_unplottable_cells_excluded(self):
        points = self._points()
        summary = accuracy_increase_summary(points, "JF")
        assert summary is not None  # the 20%-violation cell is ignored

    def test_no_comparable_cells_returns_none(self):
        assert accuracy_increase_summary([], "JF") is None
        assert resource_savings_summary([], "JF") is None

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5
