"""Tests for the semi-MDP (duration-aware discounting) extension."""

import numpy as np
import pytest
from dataclasses import replace

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.core.mdp import _FALLBACK, build_worker_mdp
from repro.core.solvers import value_iteration
from repro.errors import ConfigurationError


@pytest.fixture
def semi_config(tiny_config):
    return replace(tiny_config, duration_aware_discount=True)


class TestConfiguration:
    def test_reference_defaults_to_mean_gap(self, semi_config):
        expected = semi_config.per_worker_arrivals().mean_interarrival_ms
        assert semi_config.effective_reference_ms() == pytest.approx(expected)

    def test_explicit_reference(self, tiny_config):
        config = replace(
            tiny_config, duration_aware_discount=True, discount_reference_ms=50.0
        )
        assert config.effective_reference_ms() == 50.0

    def test_invalid_reference_rejected(self, tiny_config):
        config = replace(
            tiny_config, duration_aware_discount=True, discount_reference_ms=-1.0
        )
        with pytest.raises(ConfigurationError):
            config.effective_reference_ms()


class TestDiscounting:
    def test_discounts_scale_with_latency(self, semi_config):
        mdp = build_worker_mdp(semi_config)
        # Slower actions are discounted more heavily.
        fast = mdp.discount_of(mdp.space.index(1, 5), (0, 1))
        slow = mdp.discount_of(mdp.space.index(1, 5), (2, 1))
        assert 0.0 < slow < fast < 1.0

    def test_plain_mode_uniform_discount(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        for m in range(mdp.num_models):
            assert mdp.discount_of(mdp.space.index(1, 5), (m, 1)) == (
                tiny_config.discount
            )

    def test_reference_equal_latency_matches_plain(self, tiny_models):
        """With one model and reference == its latency, the semi-MDP
        discount per service epoch equals the plain discount."""
        single = tiny_models.subset(["fast"])
        latency = single.get("fast").latency_ms(1)
        base = WorkerMDPConfig(
            model_set=single,
            slo_ms=100.0,
            arrivals=PoissonArrivals(25.0),
            max_batch_size=1,
            max_queue=1,
            fld_resolution=6,
        )
        plain = value_iteration(build_worker_mdp(base)).values
        semi = value_iteration(
            build_worker_mdp(
                replace(
                    base,
                    duration_aware_discount=True,
                    discount_reference_ms=latency,
                )
            )
        ).values
        # Serving epochs coincide; only the idle epoch's discount differs
        # (gamma ** (gap / latency) vs gamma), so values stay close but the
        # *relative* structure matches.
        assert np.argmax(plain) == np.argmax(semi)

    def test_converges_and_differs_from_plain(self, tiny_config, semi_config):
        plain = value_iteration(build_worker_mdp(tiny_config))
        semi = value_iteration(build_worker_mdp(semi_config))
        assert plain.converged and semi.converged
        assert not np.allclose(plain.values, semi.values)

    def test_guarantees_valid(self, semi_config):
        g = generate_policy(semi_config).guarantees
        assert 0.0 <= g.expected_accuracy <= 1.0
        assert 0.0 <= g.expected_violation_rate <= 1.0

    def test_drop_mode_composes(self, semi_config):
        config = replace(semi_config, drop_late=True)
        mdp = build_worker_mdp(config)
        # Dropping is instantaneous in real time: discount 1.
        assert mdp.discount_of(mdp.space.index(2, 0), (_FALLBACK, 2)) == 1.0
        stats = value_iteration(mdp)
        assert stats.converged
