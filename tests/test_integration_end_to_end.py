"""End-to-end integration tests: the paper's headline claims, small scale.

These run the complete pipeline — zoo, offline policy generation, online
serving through the simulator — and assert the *qualitative* results of §7:

1. RAMSIS achieves at least the baselines' accuracy wherever both keep
   violations under 5% (Figs. 5/6);
2. both converge at the extremes of the load range (§7.2 insight);
3. the offline expectations bound the online metrics (§5.1, Fig. 7);
4. RAMSIS upgrades models during lulls (the Fig. 2 mechanism), visible as
   a mixed model-usage histogram at moderate load.
"""

import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import image_task
from repro.experiments.runner import clear_caches, run_method
from repro.selectors import JellyfishPlusSelector, RamsisSelector
from repro.sim import OracleLoadMonitor, Simulation, SimulationConfig

SMOKE = ExperimentScale.smoke()


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()


class TestHeadlineClaim:
    @pytest.mark.parametrize("load_per_worker", [10.0, 20.0, 30.0])
    def test_ramsis_at_least_as_accurate_when_both_feasible(
        self, load_per_worker
    ):
        task = image_task()
        workers = 2
        load = load_per_worker * workers
        trace = LoadTrace.constant(load, 25_000.0)
        cells = {
            m: run_method(m, task, 150.0, workers, trace, SMOKE, oracle_load=True)
            for m in ("RAMSIS", "JF", "MS")
        }
        ramsis = cells["RAMSIS"]
        assert ramsis.plottable, f"RAMSIS violated at {load_per_worker}/worker"
        for name in ("JF", "MS"):
            if cells[name].plottable:
                assert ramsis.accuracy >= cells[name].accuracy - 0.005

    def test_methods_converge_at_low_load(self):
        """§7.2: at very low load, arrivals are too sparse for inter-arrival
        awareness to matter much."""
        task = image_task()
        trace = LoadTrace.constant(4.0, 25_000.0)
        ramsis = run_method("RAMSIS", task, 150.0, 2, trace, SMOKE, oracle_load=True)
        ms = run_method("MS", task, 150.0, 2, trace, SMOKE, oracle_load=True)
        if ramsis.plottable and ms.plottable:
            assert abs(ramsis.accuracy - ms.accuracy) < 0.06


class TestGuaranteeBounds:
    def test_expectations_bound_online_metrics(self):
        """§5.1 / Fig. 7 at a satisfiable load."""
        task = image_task()
        load, workers, slo = 40.0, 2, 150.0
        config = WorkerMDPConfig.default_poisson(
            task.model_set,
            slo_ms=slo,
            load_qps=load,
            num_workers=workers,
            fld_resolution=SMOKE.fld_resolution,
            max_batch_size=SMOKE.max_batch_size,
        )
        result = generate_policy(config)
        trace = LoadTrace.constant(load, 60_000.0)
        sim = Simulation(
            SimulationConfig(
                model_set=task.model_set,
                slo_ms=slo,
                num_workers=workers,
                max_batch_size=SMOKE.max_batch_size,
                monitor=OracleLoadMonitor(trace),
                seed=23,
            )
        )
        metrics = sim.run(
            RamsisSelector(result.policy), trace, pattern=PoissonArrivals(load)
        )
        g = result.guarantees
        assert metrics.accuracy_per_satisfied_query >= g.expected_accuracy - 0.02
        assert metrics.violation_rate <= g.expected_violation_rate + 0.02


class TestLullExploitation:
    def test_ramsis_mixes_models_at_moderate_load(self):
        """The Fig. 2 mechanism: under Poisson arrivals at moderate load,
        RAMSIS serves some queries on higher-accuracy models while the
        load-granular baseline pins a single model."""
        task = image_task()
        load, workers, slo = 30.0, 2, 150.0
        config = WorkerMDPConfig.default_poisson(
            task.model_set,
            slo_ms=slo,
            load_qps=load,
            num_workers=workers,
            fld_resolution=SMOKE.fld_resolution,
            max_batch_size=SMOKE.max_batch_size,
        )
        policy = generate_policy(config, with_guarantees=False).policy
        trace = LoadTrace.constant(load, 30_000.0)

        def model_share(selector):
            sim = Simulation(
                SimulationConfig(
                    model_set=task.model_set,
                    slo_ms=slo,
                    num_workers=workers,
                    max_batch_size=SMOKE.max_batch_size,
                    monitor=OracleLoadMonitor(trace),
                    seed=29,
                )
            )
            return sim.run(
                selector, trace, pattern=PoissonArrivals(load)
            ).model_share()

        ramsis_share = model_share(RamsisSelector(policy))
        jf_share = model_share(JellyfishPlusSelector())
        assert len(ramsis_share) >= 2, "RAMSIS should mix models"
        assert len(jf_share) == 1, "load-granular baseline pins one model"
