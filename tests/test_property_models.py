"""Property-based tests on model sets and Pareto pruning (§4.3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet


@st.composite
def model_sets(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    accuracies = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=0.99),
            min_size=count,
            max_size=count,
        )
    )
    per_items = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=200.0),
            min_size=count,
            max_size=count,
        )
    )
    overheads = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0),
            min_size=count,
            max_size=count,
        )
    )
    models = [
        ModelProfile(
            name=f"m{i}",
            accuracy=accuracies[i],
            latency=LinearLatencyModel(
                overhead_ms=overheads[i], per_item_ms=per_items[i], std_ms=0.0
            ),
        )
        for i in range(count)
    ]
    return ModelSet(models)


class TestParetoProperties:
    @given(models=model_sets())
    @settings(max_examples=100, deadline=None)
    def test_front_members_mutually_non_dominating(self, models):
        front = models.pareto_front()
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.latency_ms(1) <= a.latency_ms(1)
                    and b.accuracy >= a.accuracy
                    and (
                        b.latency_ms(1) < a.latency_ms(1)
                        or b.accuracy > a.accuracy
                    )
                )
                assert not dominates

    @given(models=model_sets())
    @settings(max_examples=100, deadline=None)
    def test_every_pruned_model_is_dominated(self, models):
        front_names = set(models.pareto_front().names)
        for candidate in models:
            if candidate.name in front_names:
                continue
            dominated = any(
                other.latency_ms(1) <= candidate.latency_ms(1)
                and other.accuracy >= candidate.accuracy
                and (
                    other.latency_ms(1) < candidate.latency_ms(1)
                    or other.accuracy > candidate.accuracy
                )
                for other in models
                if other is not candidate
            )
            assert dominated

    @given(models=model_sets())
    @settings(max_examples=60, deadline=None)
    def test_front_idempotent(self, models):
        front = models.pareto_front()
        assert front.pareto_front().names == front.names

    @given(models=model_sets())
    @settings(max_examples=60, deadline=None)
    def test_front_contains_extremes(self, models):
        front = models.pareto_front()
        # The most accurate model is never dominated on accuracy; the
        # overall-fastest is never dominated on latency (ties may swap
        # which representative survives, so compare values, not names).
        best_acc = models.most_accurate().accuracy
        best_lat = models.fastest().latency_ms(1)
        assert any(m.accuracy == best_acc for m in front)
        assert any(m.latency_ms(1) == best_lat for m in front)

    @given(models=model_sets(), factor=st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_latency_scaling_preserves_front(self, models, factor):
        assert (
            models.with_latency_scale(factor).pareto_front().names
            == models.pareto_front().names
        )

    @given(models=model_sets(), slo=st.floats(min_value=5.0, max_value=500.0))
    @settings(max_examples=60, deadline=None)
    def test_max_batch_monotone_in_slo(self, models, slo):
        from repro.errors import ProfileError

        def batch_at(s):
            try:
                return models.max_batch_size(s, cap=16)
            except ProfileError:
                return 0

        assert batch_at(slo) <= batch_at(slo * 2.0)
