"""Tests for repro.arrivals.processes."""

import numpy as np
import pytest

from repro.arrivals.distributions import (
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
)
from repro.arrivals.processes import ArrivalProcess, sample_arrival_times
from repro.arrivals.traces import LoadTrace


class TestSampleArrivalTimes:
    def test_count_close_to_expectation(self, rng):
        trace = LoadTrace.constant(1000.0, 60_000.0)
        times = sample_arrival_times(trace, PoissonArrivals(1000.0), rng)
        assert times.shape[0] == pytest.approx(60_000, rel=0.05)

    def test_all_within_trace(self, rng):
        trace = LoadTrace(interval_ms=5_000.0, qps=(100.0, 300.0))
        times = sample_arrival_times(trace, PoissonArrivals(200.0), rng)
        assert times.min() >= 0.0
        assert times.max() < trace.duration_ms

    def test_sorted_output(self, rng):
        trace = LoadTrace.constant(500.0, 10_000.0)
        times = sample_arrival_times(trace, PoissonArrivals(500.0), rng)
        assert np.all(np.diff(times) >= 0.0)

    def test_interval_rates_respected(self, rng):
        trace = LoadTrace(interval_ms=30_000.0, qps=(100.0, 1000.0))
        times = sample_arrival_times(trace, PoissonArrivals(500.0), rng)
        first = np.sum(times < 30_000.0)
        second = np.sum(times >= 30_000.0)
        assert first == pytest.approx(3000, rel=0.15)
        assert second == pytest.approx(30_000, rel=0.1)

    def test_zero_load_interval_empty(self, rng):
        trace = LoadTrace(interval_ms=10_000.0, qps=(0.0, 100.0))
        times = sample_arrival_times(trace, PoissonArrivals(100.0), rng)
        assert np.sum(times < 10_000.0) == 0

    def test_deterministic_pattern_evenly_spaced(self, rng):
        trace = LoadTrace.constant(100.0, 5_000.0)
        times = sample_arrival_times(trace, DeterministicArrivals(100.0), rng)
        gaps = np.diff(times)
        assert np.allclose(gaps, 10.0)

    def test_gamma_pattern_runs(self, rng):
        trace = LoadTrace.constant(200.0, 20_000.0)
        times = sample_arrival_times(trace, GammaArrivals(200.0, shape=3.0), rng)
        assert times.shape[0] == pytest.approx(4000, rel=0.1)

    def test_reproducible_for_seed(self):
        trace = LoadTrace.constant(300.0, 5_000.0)
        a = sample_arrival_times(trace, PoissonArrivals(300.0), np.random.default_rng(5))
        b = sample_arrival_times(trace, PoissonArrivals(300.0), np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_defaults_when_args_omitted(self):
        trace = LoadTrace.constant(100.0, 2_000.0)
        times = sample_arrival_times(trace)
        assert times.shape[0] > 0


class TestArrivalProcess:
    def test_sample_and_expectation(self, rng):
        trace = LoadTrace.constant(400.0, 10_000.0)
        proc = ArrivalProcess(trace=trace, pattern=PoissonArrivals(400.0))
        assert proc.expected_queries() == pytest.approx(4000.0)
        assert proc.sample(rng).shape[0] == pytest.approx(4000, rel=0.1)
