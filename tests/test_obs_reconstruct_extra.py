"""Reconstruction coverage beyond the basic integration path: accuracy
exactness, multi-SLO partitions with per-class tracers, and heterogeneous
worker fleets."""

import pytest

from repro.arrivals.traces import LoadTrace
from repro.obs.exporters import write_events_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.reconstruct import reconstruct_from_jsonl, reconstruct_metrics
from repro.obs.trace import RecordingTracer
from repro.sim.multislo import SLOClass, run_multi_slo
from repro.sim.simulator import Simulation, SimulationConfig

from .test_obs_integration import traced_run
from .test_sim_simulator import AlwaysModelSelector


def assert_summary_matches(summary, metrics):
    """The trace alone must reproduce the simulator's metrics exactly."""
    assert summary.total_queries == metrics.total_queries
    assert summary.satisfied_queries == metrics.satisfied_queries
    assert summary.violation_rate == metrics.violation_rate
    assert summary.decisions == metrics.decisions
    # Float-exact, not approx: the folded accuracy sum preserves the
    # collector's summation order.
    assert (
        summary.accuracy_per_satisfied_query
        == metrics.accuracy_per_satisfied_query
    )


class TestAccuracyReconstruction:
    def test_accuracy_exact_per_worker(self, tiny_models):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("medium"),
            LoadTrace.constant(30.0, 5000.0),
        )
        assert metrics.accuracy_per_satisfied_query > 0.0
        assert_summary_matches(reconstruct_metrics(tracer), metrics)

    def test_accuracy_exact_with_mixed_models(self, tiny_models):
        # Greedy-style switching exercises distinct per-model accuracies.
        from repro.selectors import GreedyDeadlineSelector

        metrics, tracer, _ = traced_run(
            tiny_models,
            GreedyDeadlineSelector(),
            LoadTrace.constant(50.0, 5000.0),
            seed=3,
        )
        assert_summary_matches(reconstruct_metrics(tracer), metrics)

    def test_accuracy_survives_jsonl_round_trip(self, tiny_models, tmp_path):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(40.0, 4000.0),
        )
        path = write_events_jsonl(tracer, tmp_path / "events.jsonl")
        assert_summary_matches(reconstruct_from_jsonl(path), metrics)

    def test_dropped_queries_fold_as_zero_accuracy(self, tiny_models):
        # A tiny queue cap forces drops; drop completions carry
        # accuracy=0.0 and must not perturb the satisfied-query mean.
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("slow", cap=2),
            LoadTrace.constant(80.0, 4000.0),
            workers=1,
        )
        assert metrics.violation_rate > 0.0
        assert_summary_matches(reconstruct_metrics(tracer), metrics)


class TestMultiSloReconstruction:
    def test_per_class_traces_reconstruct_exactly(self, tiny_models):
        classes = [
            SLOClass(
                slo_ms=80.0,
                trace=LoadTrace.constant(25.0, 5000.0),
                selector=AlwaysModelSelector("fast"),
                num_workers=1,
                tracer=RecordingTracer(),
                registry=MetricsRegistry(),
            ),
            SLOClass(
                slo_ms=200.0,
                trace=LoadTrace.constant(15.0, 5000.0),
                selector=AlwaysModelSelector("slow"),
                num_workers=2,
                tracer=RecordingTracer(),
            ),
        ]
        report = run_multi_slo(tiny_models, classes, seed=5)
        for cls in classes:
            metrics = report.per_class[cls.slo_ms]
            assert metrics.total_queries > 0
            assert_summary_matches(reconstruct_metrics(cls.tracer), metrics)

    def test_partitions_do_not_cross_contaminate(self, tiny_models):
        classes = [
            SLOClass(
                slo_ms=80.0,
                trace=LoadTrace.constant(30.0, 3000.0),
                selector=AlwaysModelSelector("fast"),
                num_workers=1,
                tracer=RecordingTracer(),
            ),
            SLOClass(
                slo_ms=200.0,
                trace=LoadTrace.constant(10.0, 3000.0),
                selector=AlwaysModelSelector("medium"),
                num_workers=1,
                tracer=RecordingTracer(),
            ),
        ]
        report = run_multi_slo(tiny_models, classes, seed=5)
        per_trace_totals = [
            reconstruct_metrics(cls.tracer).total_queries for cls in classes
        ]
        assert sum(per_trace_totals) == report.total_queries
        assert per_trace_totals[0] == report.per_class[80.0].total_queries

    def test_per_class_registry_populated(self, tiny_models):
        registry = MetricsRegistry()
        classes = [
            SLOClass(
                slo_ms=100.0,
                trace=LoadTrace.constant(20.0, 3000.0),
                selector=AlwaysModelSelector("fast"),
                num_workers=1,
                registry=registry,
            ),
        ]
        report = run_multi_slo(tiny_models, classes, seed=5)
        (completions,) = registry.collect("sim_completions_total")
        assert completions.value == float(report.per_class[100.0].total_queries)


class TestHeterogeneousReconstruction:
    @pytest.mark.parametrize("factors", [(1.0, 2.0), (0.5, 1.0, 2.0)])
    def test_speed_factors_reconstruct_exactly(self, tiny_models, factors):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("medium"),
            LoadTrace.constant(40.0, 5000.0),
            workers=len(factors),
            worker_speed_factors=factors,
        )
        assert metrics.total_queries > 0
        assert_summary_matches(reconstruct_metrics(tracer), metrics)

    def test_heterogeneous_jsonl_round_trip(self, tiny_models, tmp_path):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(60.0, 4000.0),
            workers=2,
            worker_speed_factors=(1.0, 3.0),
        )
        path = write_events_jsonl(tracer, tmp_path / "events.jsonl")
        assert_summary_matches(reconstruct_from_jsonl(path), metrics)

    def test_slow_fleet_with_violations_still_exact(self, tiny_models):
        # Heterogeneous + overloaded: violations and (possibly) drops mix
        # satisfied and unsatisfied completions across unequal workers.
        tracer = RecordingTracer()
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=60.0,
                num_workers=2,
                worker_speed_factors=(0.5, 1.5),
                tracer=tracer,
                seed=9,
            )
        )
        metrics = sim.run(
            AlwaysModelSelector("slow"), LoadTrace.constant(70.0, 4000.0)
        )
        assert metrics.violation_rate > 0.0
        assert_summary_matches(reconstruct_metrics(tracer), metrics)
