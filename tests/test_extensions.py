"""Tests for the paper's extension features: query dropping (§4.3.1's
alternative formulation) and multi-SLO serving (Appendix G)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.generator import generate_policy
from repro.core.mdp import _FALLBACK, build_worker_mdp
from repro.errors import ConfigurationError
from repro.selectors import GreedyDeadlineSelector, RamsisSelector
from repro.sim import (
    MultiSLOReport,
    SLOClass,
    Simulation,
    SimulationConfig,
    partition_workers,
    run_multi_slo,
)


class TestDropLateMDP:
    def test_fallback_transitions_to_empty(self, tiny_config):
        config = replace(tiny_config, drop_late=True)
        mdp = build_worker_mdp(config)
        sp = mdp.space
        row = mdp.transition_row(sp.index(4, 0), (_FALLBACK, 4))
        assert row[sp.EMPTY] == 1.0
        assert row.sum() == 1.0

    def test_full_state_drops(self, tiny_config):
        config = replace(tiny_config, drop_late=True)
        mdp = build_worker_mdp(config)
        from repro.core.solvers import value_iteration

        stats = value_iteration(mdp)
        # V(FULL) = gamma * V(EMPTY) exactly in drop mode.
        assert stats.values[mdp.space.FULL] == pytest.approx(
            tiny_config.discount * stats.values[mdp.space.EMPTY], abs=1e-6
        )

    def test_drop_mode_solves_and_differs(self, tiny_config):
        """Both formulations solve; at an overload-prone load their value
        functions genuinely differ (dropping changes the dynamics)."""
        from repro.core.solvers import value_iteration

        config = tiny_config.with_load(45.0)
        serve = value_iteration(build_worker_mdp(config)).values
        drop = value_iteration(
            build_worker_mdp(replace(config, drop_late=True))
        ).values
        assert serve.shape == drop.shape
        assert not np.allclose(serve, drop)

    def test_guarantees_still_probabilities(self, tiny_config):
        g = generate_policy(replace(tiny_config, drop_late=True)).guarantees
        assert 0.0 <= g.expected_accuracy <= 1.0
        assert 0.0 <= g.expected_violation_rate <= 1.0


class TestDropLateSimulator:
    def _run(self, tiny_models, drop):
        trace = LoadTrace.constant(1.0, 300.0)
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=50.0,
                num_workers=1,
                drop_late=drop,
                seed=1,
            )
        )
        # Burst of 6 simultaneous arrivals: slow to clear within 50 ms.
        arrivals = np.zeros(6)
        return sim.run(GreedyDeadlineSelector(), trace, arrival_times=arrivals)

    def test_dropped_queries_counted_as_violations(self, tiny_models):
        metrics = self._run(tiny_models, drop=True)
        assert metrics.total_queries == 6
        assert "<dropped>" in metrics.model_query_counts
        assert metrics.violation_rate > 0.0

    def test_drop_conserves_queries(self, tiny_models):
        served = self._run(tiny_models, drop=False)
        dropped = self._run(tiny_models, drop=True)
        assert served.total_queries == dropped.total_queries == 6

    def test_no_drops_when_satisfiable(self, tiny_models):
        trace = LoadTrace.constant(20.0, 10_000.0)
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                num_workers=1,
                drop_late=True,
                seed=2,
            )
        )
        metrics = sim.run(
            GreedyDeadlineSelector(), trace, pattern=PoissonArrivals(20.0)
        )
        assert metrics.model_query_counts.get("<dropped>", 0) < (
            0.05 * metrics.total_queries
        )

    def test_drop_policy_end_to_end(self, tiny_config, tiny_models):
        """A drop-mode RAMSIS policy deployed with a drop-mode simulator."""
        config = replace(tiny_config.with_load(40.0), drop_late=True)
        policy = generate_policy(config, with_guarantees=False).policy
        trace = LoadTrace.constant(40.0, 20_000.0)
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                num_workers=1,
                max_batch_size=8,
                drop_late=True,
                seed=3,
            )
        )
        metrics = sim.run(
            RamsisSelector(policy), trace, pattern=PoissonArrivals(40.0)
        )
        assert metrics.total_queries > 0


class TestPartitionWorkers:
    def _classes(self, tiny_models):
        return [
            SLOClass(
                slo_ms=60.0,
                trace=LoadTrace.constant(60.0, 5_000.0),
                selector=GreedyDeadlineSelector(),
            ),
            SLOClass(
                slo_ms=200.0,
                trace=LoadTrace.constant(20.0, 5_000.0),
                selector=GreedyDeadlineSelector(),
            ),
        ]

    def test_partition_sums_to_total(self, tiny_models):
        shares = partition_workers(self._classes(tiny_models), tiny_models, 6)
        assert sum(shares.values()) == 6
        assert all(v >= 1 for v in shares.values())

    def test_heavier_class_gets_more(self, tiny_models):
        shares = partition_workers(self._classes(tiny_models), tiny_models, 6)
        assert shares[60.0] >= shares[200.0]

    def test_too_few_workers_rejected(self, tiny_models):
        with pytest.raises(ConfigurationError):
            partition_workers(self._classes(tiny_models), tiny_models, 1)


class TestRunMultiSLO:
    def test_per_class_isolation(self, tiny_models):
        classes = [
            SLOClass(
                slo_ms=60.0,
                trace=LoadTrace.constant(40.0, 8_000.0),
                selector=GreedyDeadlineSelector(),
                num_workers=2,
            ),
            SLOClass(
                slo_ms=200.0,
                trace=LoadTrace.constant(15.0, 8_000.0),
                selector=GreedyDeadlineSelector(),
                num_workers=1,
            ),
        ]
        report = run_multi_slo(tiny_models, classes, seed=5)
        assert set(report.per_class) == {60.0, 200.0}
        assert report.total_queries == sum(
            m.total_queries for m in report.per_class.values()
        )
        # The looser SLO class can afford the more accurate model.
        tight = report.per_class[60.0]
        loose = report.per_class[200.0]
        assert loose.accuracy_per_satisfied_query >= (
            tight.accuracy_per_satisfied_query - 1e-9
        )

    def test_auto_partition(self, tiny_models):
        classes = [
            SLOClass(
                slo_ms=60.0,
                trace=LoadTrace.constant(60.0, 4_000.0),
                selector=GreedyDeadlineSelector(),
            ),
            SLOClass(
                slo_ms=200.0,
                trace=LoadTrace.constant(10.0, 4_000.0),
                selector=GreedyDeadlineSelector(),
            ),
        ]
        report = run_multi_slo(tiny_models, classes, total_workers=5, seed=6)
        assert sum(report.workers.values()) == 5

    def test_aggregate_metrics(self, tiny_models):
        classes = [
            SLOClass(
                slo_ms=100.0,
                trace=LoadTrace.constant(20.0, 5_000.0),
                selector=GreedyDeadlineSelector(),
                num_workers=1,
            )
        ]
        report = run_multi_slo(tiny_models, classes, seed=7)
        only = report.per_class[100.0]
        assert report.aggregate_accuracy == pytest.approx(
            only.accuracy_per_satisfied_query
        )
        assert report.aggregate_violation_rate == pytest.approx(
            only.violation_rate
        )

    def test_duplicate_slos_rejected(self, tiny_models):
        cls = SLOClass(
            slo_ms=100.0,
            trace=LoadTrace.constant(10.0, 1_000.0),
            selector=GreedyDeadlineSelector(),
            num_workers=1,
        )
        with pytest.raises(ConfigurationError):
            run_multi_slo(tiny_models, [cls, cls], seed=1)

    def test_missing_total_workers_rejected(self, tiny_models):
        cls = SLOClass(
            slo_ms=100.0,
            trace=LoadTrace.constant(10.0, 1_000.0),
            selector=GreedyDeadlineSelector(),
        )
        with pytest.raises(ConfigurationError):
            run_multi_slo(tiny_models, [cls], seed=1)
