"""Tests for the wall-clock serving runtime."""

import numpy as np
import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.generator import generate_policy
from repro.runtime import CentralController, WorkloadGenerator
from repro.runtime.clock import VirtualClock
from repro.selectors import GreedyDeadlineSelector, JellyfishPlusSelector, RamsisSelector
from repro.sim.latency_model import DeterministicLatency

#: Aggressive compression keeps runtime tests fast (100x real time).
FAST = 0.01


class TestVirtualClock:
    def test_scaled_sleep(self):
        import time

        clock = VirtualClock(time_scale=0.01)
        start = time.monotonic()
        clock.sleep_ms(500.0)  # 5 ms wall
        elapsed = time.monotonic() - start
        assert 0.003 <= elapsed <= 0.2
        assert clock.now_ms() >= 500.0

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            VirtualClock(time_scale=0.0)

    def test_sleep_until_past_is_noop(self):
        clock = VirtualClock(time_scale=0.01)
        clock.sleep_until_ms(-100.0)  # already past


class TestWorkloadGenerator:
    def test_sample_matches_simulator_sampling(self):
        trace = LoadTrace.constant(200.0, 2_000.0)
        gen = WorkloadGenerator(trace, slo_ms=100.0, seed=4)
        a = gen.sample()
        b = gen.sample()
        assert np.array_equal(a, b)
        assert a.shape[0] == pytest.approx(400, rel=0.2)

    def test_run_submits_all(self):
        trace = LoadTrace.constant(100.0, 1_000.0)
        gen = WorkloadGenerator(trace, slo_ms=100.0, seed=4)
        clock = VirtualClock(time_scale=FAST)
        seen = []
        count = gen.run(clock, seen.append)
        assert count == len(seen)
        # Deadlines carry the SLO.
        assert all(
            q.deadline_ms == pytest.approx(q.arrival_ms + 100.0) for q in seen
        )


class TestCentralController:
    def test_serves_every_query(self, tiny_models):
        trace = LoadTrace.constant(150.0, 2_000.0)
        controller = CentralController(
            tiny_models, slo_ms=100.0, num_workers=2, time_scale=FAST, seed=1,
            latency_model=DeterministicLatency(),
        )
        report = controller.serve(
            GreedyDeadlineSelector(), trace, pattern=PoissonArrivals(150.0)
        )
        assert report.metrics.total_queries == report.submitted
        assert report.submitted > 0

    def test_ramsis_policy_runs(self, tiny_config):
        policy = generate_policy(tiny_config).policy
        trace = LoadTrace.constant(25.0, 2_000.0)
        # Gentler compression here: at 100x the 100 ms SLO is 1 ms of wall
        # time, which thread-wakeup jitter alone would blow through.
        controller = CentralController(
            tiny_config.model_set,
            slo_ms=100.0,
            num_workers=1,
            time_scale=0.1,
            seed=2,
            latency_model=DeterministicLatency(),
        )
        report = controller.serve(
            RamsisSelector(policy), trace, pattern=PoissonArrivals(25.0)
        )
        assert report.metrics.total_queries == report.submitted
        # At this easy load the policy should rarely violate even with the
        # runtime's scheduling jitter.
        assert report.metrics.violation_rate < 0.25

    def test_central_scope_selector_runs(self, tiny_models):
        trace = LoadTrace.constant(100.0, 1_500.0)
        controller = CentralController(
            tiny_models, slo_ms=100.0, num_workers=2, time_scale=FAST, seed=3,
            latency_model=DeterministicLatency(),
        )
        report = controller.serve(
            JellyfishPlusSelector(), trace, pattern=PoissonArrivals(100.0)
        )
        assert report.metrics.total_queries == report.submitted

    def test_rejects_zero_workers(self, tiny_models):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            CentralController(tiny_models, slo_ms=100.0, num_workers=0)
