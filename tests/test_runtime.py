"""Tests for the wall-clock serving runtime."""

import numpy as np
import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.generator import generate_policy
from repro.runtime import CentralController, WorkloadGenerator
from repro.runtime.clock import VirtualClock
from repro.selectors import GreedyDeadlineSelector, JellyfishPlusSelector, RamsisSelector
from repro.sim.latency_model import DeterministicLatency

#: Aggressive compression keeps runtime tests fast (100x real time).
FAST = 0.01


class TestVirtualClock:
    def test_scaled_sleep(self):
        import time

        clock = VirtualClock(time_scale=0.01)
        start = time.monotonic()
        clock.sleep_ms(500.0)  # 5 ms wall
        elapsed = time.monotonic() - start
        assert 0.003 <= elapsed <= 0.2
        assert clock.now_ms() >= 500.0

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            VirtualClock(time_scale=0.0)

    def test_sleep_until_past_is_noop(self):
        clock = VirtualClock(time_scale=0.01)
        clock.sleep_until_ms(-100.0)  # already past

    def test_wall_s_until(self):
        clock = VirtualClock(time_scale=0.01)
        # 1000 virtual ms at 0.01 scale is 10 ms of wall time.
        remaining = clock.wall_s_until(1_000.0)
        assert 0.0 < remaining <= 0.010
        assert clock.wall_s_until(-1.0) < 0.0

    def test_restart_rezeros(self):
        clock = VirtualClock(time_scale=0.01)
        clock.sleep_ms(500.0)
        assert clock.now_ms() >= 500.0
        clock.restart()
        assert clock.now_ms() < 500.0

    def test_sleep_until_reaches_absolute_deadline(self):
        clock = VirtualClock(time_scale=0.01)
        clock.sleep_until_ms(300.0)
        assert clock.now_ms() >= 300.0


class TestWorkloadGenerator:
    def test_sample_matches_simulator_sampling(self):
        trace = LoadTrace.constant(200.0, 2_000.0)
        gen = WorkloadGenerator(trace, slo_ms=100.0, seed=4)
        a = gen.sample()
        b = gen.sample()
        assert np.array_equal(a, b)
        assert a.shape[0] == pytest.approx(400, rel=0.2)

    def test_run_submits_all(self):
        trace = LoadTrace.constant(100.0, 1_000.0)
        gen = WorkloadGenerator(trace, slo_ms=100.0, seed=4)
        clock = VirtualClock(time_scale=FAST)
        seen = []
        count = gen.run(clock, seen.append)
        assert count == len(seen)
        # Deadlines carry the SLO.
        assert all(
            q.deadline_ms == pytest.approx(q.arrival_ms + 100.0) for q in seen
        )

    def test_pacing_error_bounded_at_high_compression(self):
        """Absolute-deadline pacing does not accumulate drift.

        10k arrivals replayed at heavy compression: with relative
        sleeps, per-call overhead (sub-ms each) would compound into
        hundreds of ms of wall-clock drift by the last arrival; pacing
        to the absolute virtual deadline keeps the *max* wall lag at
        scheduling-jitter scale regardless of the arrival count.
        """
        n = 10_000
        duration_ms = 2_000.0
        arrivals = np.linspace(0.0, duration_ms, n, endpoint=False)
        trace = LoadTrace.constant(n / (duration_ms / 1_000.0), duration_ms)
        gen = WorkloadGenerator(trace, slo_ms=100.0, seed=0)
        scale = 0.001  # 1000x compression: 2s of trace in 2ms of wall
        clock = VirtualClock(time_scale=scale)
        max_lag_wall_ms = 0.0

        def submit(query):
            nonlocal max_lag_wall_ms
            lag_virtual = clock.now_ms() - query.arrival_ms
            max_lag_wall_ms = max(max_lag_wall_ms, lag_virtual * scale)

        count = gen.run(clock, submit, arrivals=arrivals)
        assert count == n
        # Bound in *wall* milliseconds: generous for CI-noise, but far
        # below the O(n * per-call-overhead) a drifting pacer shows.
        assert max_lag_wall_ms < 250.0


class TestCentralController:
    def test_serves_every_query(self, tiny_models):
        trace = LoadTrace.constant(150.0, 2_000.0)
        controller = CentralController(
            tiny_models, slo_ms=100.0, num_workers=2, time_scale=FAST, seed=1,
            latency_model=DeterministicLatency(),
        )
        report = controller.serve(
            GreedyDeadlineSelector(), trace, pattern=PoissonArrivals(150.0)
        )
        assert report.metrics.total_queries == report.submitted
        assert report.submitted > 0

    def test_ramsis_policy_runs(self, tiny_config):
        policy = generate_policy(tiny_config).policy
        trace = LoadTrace.constant(25.0, 2_000.0)
        # Gentler compression here: at 100x the 100 ms SLO is 1 ms of wall
        # time, which thread-wakeup jitter alone would blow through.
        controller = CentralController(
            tiny_config.model_set,
            slo_ms=100.0,
            num_workers=1,
            time_scale=0.1,
            seed=2,
            latency_model=DeterministicLatency(),
        )
        report = controller.serve(
            RamsisSelector(policy), trace, pattern=PoissonArrivals(25.0)
        )
        assert report.metrics.total_queries == report.submitted
        # At this easy load the policy should rarely violate even with the
        # runtime's scheduling jitter.
        assert report.metrics.violation_rate < 0.25

    def test_central_scope_selector_runs(self, tiny_models):
        trace = LoadTrace.constant(100.0, 1_500.0)
        controller = CentralController(
            tiny_models, slo_ms=100.0, num_workers=2, time_scale=FAST, seed=3,
            latency_model=DeterministicLatency(),
        )
        report = controller.serve(
            JellyfishPlusSelector(), trace, pattern=PoissonArrivals(100.0)
        )
        assert report.metrics.total_queries == report.submitted

    def test_rejects_zero_workers(self, tiny_models):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            CentralController(tiny_models, slo_ms=100.0, num_workers=0)

    def test_zero_query_run_terminates_without_poll_dead_time(self, tiny_models):
        """The drain path is event-driven: no arrivals, no waiting.

        Under the old 5 ms polling loop an empty run still burned at
        least one poll interval; the condition-variable drain falls
        straight through, so the whole serve() call is bounded by thread
        start/stop costs only.
        """
        import time

        trace = LoadTrace.constant(100.0, 1_000.0)
        controller = CentralController(
            tiny_models, slo_ms=100.0, num_workers=4, time_scale=FAST,
            seed=0, latency_model=DeterministicLatency(),
        )
        start = time.monotonic()
        report = controller.serve(
            GreedyDeadlineSelector(), trace, arrivals=np.array([])
        )
        elapsed = time.monotonic() - start
        assert report.submitted == 0
        assert report.metrics.total_queries == 0
        assert elapsed < 1.0
