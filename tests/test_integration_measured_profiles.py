"""Integration: measured profiles -> fitted models -> policies.

The downstream-user path: profile real(istic) hardware, fit parametric
latency models, and generate policies from the *measured* profiles.  The
policies must closely match the ones generated from the ground truth —
this is exactly how the paper's offline phase consumes its TorchServe
measurements.
"""

import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.profiles.io import fit_linear_model
from repro.profiles.models import ModelProfile, ModelSet
from repro.profiles.profiler import SimulatedHardware, profile_model_set
from repro.profiles.zoo import build_image_model_set


@pytest.fixture(scope="module")
def measured_set():
    """A Pareto subset re-derived purely from measurements."""
    truth = build_image_model_set().subset(
        ["shufflenet_v2_x0_5", "shufflenet_v2_x2_0", "efficientnet_b2"]
    )
    measured_profiles = profile_model_set(
        truth, max_batch_size=8, hardware=SimulatedHardware(seed=21), runs=300
    )
    measured = ModelSet(
        [
            ModelProfile(
                name=m.name,
                accuracy=m.accuracy,  # accuracy comes from the test set
                family=m.family,
                latency=fit_linear_model(measured_profiles[m.name], std_ms=10.0),
            )
            for m in truth
        ],
        task=truth.task,
    )
    return truth, measured


class TestMeasuredPipeline:
    def test_fitted_latencies_close(self, measured_set):
        truth, measured = measured_set
        for name in truth.names:
            for b in (1, 4, 8):
                assert measured.get(name).latency_ms(b) == pytest.approx(
                    truth.get(name).latency_ms(b), rel=0.08
                )

    def test_policies_agree_on_most_states(self, measured_set):
        truth, measured = measured_set

        def policy_for(models):
            config = WorkerMDPConfig(
                model_set=models,
                slo_ms=150.0,
                arrivals=PoissonArrivals(25.0),
                max_batch_size=8,
                fld_resolution=12,
            )
            return generate_policy(config, with_guarantees=False).policy

        reference = policy_for(truth)
        fitted = policy_for(measured)
        states = reference.states()
        agree = sum(
            1
            for key, action in states.items()
            if fitted.action_at(*key).model == action.model
        )
        assert agree / len(states) > 0.9

    def test_guarantees_close(self, measured_set):
        truth, measured = measured_set

        def guarantees_for(models):
            config = WorkerMDPConfig(
                model_set=models,
                slo_ms=150.0,
                arrivals=PoissonArrivals(25.0),
                max_batch_size=8,
                fld_resolution=12,
            )
            return generate_policy(config).guarantees

        g_truth = guarantees_for(truth)
        g_measured = guarantees_for(measured)
        assert g_measured.expected_accuracy == pytest.approx(
            g_truth.expected_accuracy, abs=0.02
        )
        assert g_measured.expected_violation_rate == pytest.approx(
            g_truth.expected_violation_rate, abs=0.02
        )
