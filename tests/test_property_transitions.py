"""Property-based tests (hypothesis) for transition kernels and grids.

These pin down the invariants the §4.4 derivation rests on, across randomly
drawn loads, latencies, SLOs, and grid resolutions:

- every transition row is a probability distribution;
- the count marginal of a service row equals the arrival distribution's
  counting pmf (split view);
- slack quantization never over-estimates slack;
- kernels agree across equivalent constructions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.distributions import GammaArrivals, PoissonArrivals
from repro.core.discretization import fixed_length_grid, model_based_grid
from repro.core.transitions import (
    EquilibriumRenewalKernelBuilder,
    GammaGaps,
    SplitViewKernelBuilder,
)

loads = st.floats(min_value=1.0, max_value=500.0)
slos = st.floats(min_value=20.0, max_value=600.0)
latencies = st.floats(min_value=0.5, max_value=800.0)
resolutions = st.integers(min_value=1, max_value=40)
queue_caps = st.integers(min_value=1, max_value=20)


class TestSplitKernelProperties:
    @given(load=loads, slo=slos, latency=latencies, d=resolutions, n=queue_caps)
    @settings(max_examples=60, deadline=None)
    def test_service_row_is_distribution(self, load, slo, latency, d, n):
        grid = fixed_length_grid(slo, d)
        builder = SplitViewKernelBuilder(grid, PoissonArrivals(load), n)
        row = builder.service_row(latency)
        assert row.min() >= -1e-12
        assert row.sum() == pytest.approx(1.0, abs=1e-8)

    @given(load=loads, slo=slos, latency=latencies, d=resolutions)
    @settings(max_examples=40, deadline=None)
    def test_count_marginal_matches_poisson(self, load, slo, latency, d):
        n = 12
        grid = fixed_length_grid(slo, d)
        dist = PoissonArrivals(load)
        builder = SplitViewKernelBuilder(grid, dist, n)
        row = builder.service_row(latency)
        occ = builder.space.occupied_view(row)
        pois = dist.pmf_vector(n, latency)
        assert row[builder.space.EMPTY] == pytest.approx(pois[0], abs=1e-10)
        for k in range(1, n + 1):
            assert occ[k - 1].sum() == pytest.approx(pois[k], abs=1e-9)

    @given(load=loads, slo=slos, latency=latencies, leftover=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_partial_row_is_distribution(self, load, slo, latency, leftover):
        grid = fixed_length_grid(slo, 10)
        builder = SplitViewKernelBuilder(grid, PoissonArrivals(load), 12)
        row = builder.partial_row(latency, leftover, slo / 3.0)
        assert row.min() >= -1e-12
        assert row.sum() == pytest.approx(1.0, abs=1e-9)
        assert row[builder.space.EMPTY] == 0.0


class TestEquilibriumKernelProperties:
    @given(
        load=loads,
        slo=slos,
        latency=st.floats(min_value=0.5, max_value=400.0),
        shape=st.floats(min_value=0.5, max_value=30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_are_distributions(self, load, slo, latency, shape):
        grid = fixed_length_grid(slo, 8)
        gaps = GammaGaps(shape=shape, scale_ms=1000.0 / load / shape)
        builder = EquilibriumRenewalKernelBuilder(grid, gaps, 10)
        row = builder.service_row(latency)
        assert row.min() >= -1e-10
        assert row.sum() == pytest.approx(1.0, abs=1e-7)

    @given(load=loads, latency=st.floats(min_value=1.0, max_value=300.0))
    @settings(max_examples=30, deadline=None)
    def test_exponential_equals_poisson_split(self, load, latency):
        grid = fixed_length_grid(150.0, 10)
        split = SplitViewKernelBuilder(grid, PoissonArrivals(load), 10)
        renewal = EquilibriumRenewalKernelBuilder(
            grid, GammaGaps(shape=1.0, scale_ms=1000.0 / load), 10
        )
        assert np.allclose(
            split.service_row(latency), renewal.service_row(latency), atol=1e-5
        )

    @given(
        load=loads,
        shape=st.floats(min_value=0.5, max_value=20.0),
        latency=st.floats(min_value=1.0, max_value=300.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_counts_mean_preserved(self, load, shape, latency):
        """E[arrivals during service] == rate * time (up to truncation)."""
        n = 40
        grid = fixed_length_grid(150.0, 4)
        gaps = GammaGaps(shape=shape, scale_ms=1000.0 / load / shape)
        builder = EquilibriumRenewalKernelBuilder(grid, gaps, n)
        counts = builder.arrival_counts(latency)
        tail = 1.0 - counts.sum()
        if tail < 1e-6:  # only check when the support captures the mass
            mean = float((np.arange(n + 1) * counts).sum())
            assert mean == pytest.approx(load / 1000.0 * latency, rel=0.08, abs=0.05)


class TestGridProperties:
    @given(slo=slos, d=resolutions, slack=st.floats(-100.0, 1000.0))
    @settings(max_examples=100, deadline=None)
    def test_floor_never_overestimates(self, slo, d, slack):
        grid = fixed_length_grid(slo, d)
        j = grid.floor_index(slack)
        assert grid[j] <= max(slack, 0.0) + 1e-9 or j == 0

    @given(slo=slos, d=resolutions)
    @settings(max_examples=60, deadline=None)
    def test_bins_partition_slo_range(self, slo, d):
        grid = fixed_length_grid(slo, d)
        uppers = [grid.upper(j) for j in range(len(grid))]
        assert uppers[:-1] == list(grid.values[1:])
        assert uppers[-1] == slo

    @given(slo=st.floats(min_value=50.0, max_value=600.0), cap=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_md_grid_values_are_latencies_or_endpoints(self, slo, cap):
        from tests.conftest import make_tiny_model_set

        models = make_tiny_model_set()
        grid = model_based_grid(models, slo, cap)
        valid = {0.0, float(slo)}
        for m in models:
            for b in range(1, cap + 1):
                if m.latency_ms(b) <= slo:
                    valid.add(float(m.latency_ms(b)))
        assert set(grid.values) <= valid


class TestArrivalDistributionProperties:
    @given(load=loads, window=st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=60, deadline=None)
    def test_poisson_pmf_normalized(self, load, window):
        dist = PoissonArrivals(load)
        bound = dist.support_bound(window)
        vec = dist.pmf_vector(bound, window)
        assert vec.min() >= 0.0
        assert vec.sum() == pytest.approx(1.0, abs=1e-8)

    @given(
        load=loads,
        shape=st.floats(min_value=0.3, max_value=25.0),
        window=st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_gamma_pmf_normalized(self, load, shape, window):
        dist = GammaArrivals(load, shape=shape)
        bound = dist.support_bound(window)
        vec = dist.pmf_vector(bound, window)
        assert vec.min() >= -1e-12
        assert vec.sum() == pytest.approx(1.0, abs=1e-7)

    @given(load=loads, k=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_split_round_robin_preserves_total_rate(self, load, k):
        dist = PoissonArrivals(load)
        per_worker = dist.split_round_robin(k)
        assert per_worker.load_qps * k == pytest.approx(load)
