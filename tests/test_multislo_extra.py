"""Additional multi-SLO tests: pattern overrides and RAMSIS per class."""

import pytest

from repro.arrivals.distributions import DeterministicArrivals, PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.selectors import GreedyDeadlineSelector, RamsisSelector
from repro.sim import SLOClass, run_multi_slo


class TestPatternOverride:
    def test_deterministic_pattern_respected(self, tiny_models):
        cls = SLOClass(
            slo_ms=100.0,
            trace=LoadTrace.constant(100.0, 5_000.0),
            selector=GreedyDeadlineSelector(),
            num_workers=1,
            pattern=DeterministicArrivals(100.0),
        )
        report = run_multi_slo(tiny_models, [cls], seed=3)
        metrics = report.per_class[100.0]
        # Deterministic arrivals: exactly one query per 10 ms interval.
        assert metrics.total_queries == pytest.approx(500, abs=2)

    def test_default_pattern_is_poisson(self, tiny_models):
        cls = SLOClass(
            slo_ms=100.0,
            trace=LoadTrace.constant(100.0, 5_000.0),
            selector=GreedyDeadlineSelector(),
            num_workers=1,
        )
        report = run_multi_slo(tiny_models, [cls], seed=3)
        # Poisson count varies around the mean.
        assert report.per_class[100.0].total_queries == pytest.approx(500, rel=0.2)


class TestRamsisPerClass:
    def test_policies_match_their_slo(self, tiny_models):
        """Each class runs a policy generated for its own SLO; the loose
        class ends up more accurate."""
        classes = []
        for slo, load, workers in ((60.0, 30.0, 1), (250.0, 30.0, 1)):
            config = WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=slo,
                arrivals=PoissonArrivals(load),
                num_workers=workers,
                max_batch_size=8,
                fld_resolution=10,
            )
            policy = generate_policy(config, with_guarantees=False).policy
            classes.append(
                SLOClass(
                    slo_ms=slo,
                    trace=LoadTrace.constant(load, 20_000.0),
                    selector=RamsisSelector(policy),
                    num_workers=workers,
                )
            )
        report = run_multi_slo(tiny_models, classes, seed=9)
        tight, loose = report.per_class[60.0], report.per_class[250.0]
        assert loose.accuracy_per_satisfied_query > (
            tight.accuracy_per_satisfied_query
        )
        assert loose.violation_rate < 0.05
