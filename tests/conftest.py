"""Shared fixtures for the test suite.

Most tests run on a deliberately tiny model set and coarse discretization
so MDP construction stays in the tens of milliseconds; the calibrated paper
zoos are exercised where the test is specifically about them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet
from repro.profiles.zoo import build_image_model_set, build_text_model_set


def make_tiny_model_set() -> ModelSet:
    """Three models with clean latency/accuracy separation."""
    return ModelSet(
        [
            ModelProfile(
                name="fast",
                accuracy=0.60,
                latency=LinearLatencyModel(
                    overhead_ms=2.0, per_item_ms=8.0, std_ms=0.0
                ),
                family="tiny",
            ),
            ModelProfile(
                name="medium",
                accuracy=0.75,
                latency=LinearLatencyModel(
                    overhead_ms=3.0, per_item_ms=20.0, std_ms=0.0
                ),
                family="tiny",
            ),
            ModelProfile(
                name="slow",
                accuracy=0.90,
                latency=LinearLatencyModel(
                    overhead_ms=4.0, per_item_ms=60.0, std_ms=0.0
                ),
                family="tiny",
            ),
        ],
        task="tiny",
    )


@pytest.fixture
def tiny_models() -> ModelSet:
    """Three-model deterministic-latency set for fast MDP tests."""
    return make_tiny_model_set()


@pytest.fixture(scope="session")
def image_models() -> ModelSet:
    """The calibrated 26-model ImageNet zoo."""
    return build_image_model_set()


@pytest.fixture(scope="session")
def text_models() -> ModelSet:
    """The calibrated 5-model BERT zoo."""
    return build_text_model_set()


@pytest.fixture
def tiny_config(tiny_models) -> WorkerMDPConfig:
    """A small, fast-to-solve worker MDP configuration."""
    return WorkerMDPConfig(
        model_set=tiny_models,
        slo_ms=100.0,
        arrivals=PoissonArrivals(25.0),
        num_workers=1,
        max_batch_size=8,
        fld_resolution=10,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for deterministic stochastic tests."""
    return np.random.default_rng(12345)
