"""Additional CLI coverage: ms-gen, simulate sweeps, report filtering."""

import json

import pytest

from repro.cli import main


class TestMsGen:
    def test_writes_p99_table(self, tmp_path, capsys):
        code = main(
            [
                "ms-gen",
                "--task",
                "image",
                "--slo",
                "150",
                "--workers",
                "2",
                "--load",
                "60",
                "--scale",
                "smoke",
                "--out",
                str(tmp_path / "pol"),
            ]
        )
        assert code == 0
        out_file = tmp_path / "pol" / "MS_2_150" / "p99_table.json"
        assert out_file.exists()
        payload = json.loads(out_file.read_text())
        assert payload["loads_qps"]
        assert set(payload["p99_ms"])  # one series per Pareto model
        for series in payload["p99_ms"].values():
            assert len(series) == len(payload["loads_qps"])
            assert all(v > 0 for v in series)
        assert "script complete!" in capsys.readouterr().err


class TestSimulateSweeps:
    def test_constant_sweep_without_explicit_load(self, tmp_path, capsys):
        """Omitting --load sweeps the preset's constant-load grid."""
        code = main(
            [
                "simulate",
                "--m",
                "Greedy",
                "--trace",
                "constant",
                "--task",
                "image",
                "--workers",
                "2",
                "--scale",
                "smoke",
                "--results-dir",
                str(tmp_path / "results"),
            ]
        )
        assert code == 0
        files = list((tmp_path / "results").glob("image_Greedy_constant_*.json"))
        assert len(files) == 3  # smoke preset has three constant loads

    def test_real_trace_single_worker_count(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--m",
                "Greedy",
                "--trace",
                "real",
                "--task",
                "image",
                "--workers",
                "2",
                "--scale",
                "smoke",
                "--results-dir",
                str(tmp_path / "results"),
            ]
        )
        assert code == 0
        files = list((tmp_path / "results").glob("image_Greedy_real_*.json"))
        assert len(files) == 1
        rows = json.loads(files[0].read_text())
        assert rows[0]["num_workers"] == 2
        assert rows[0]["load_qps"] is None

    def test_rerun_replaces_same_worker_row(self, tmp_path):
        args = [
            "simulate",
            "--m",
            "Greedy",
            "--trace",
            "real",
            "--task",
            "image",
            "--workers",
            "2",
            "--scale",
            "smoke",
            "--results-dir",
            str(tmp_path / "results"),
        ]
        assert main(args) == 0
        assert main(args) == 0
        files = list((tmp_path / "results").glob("image_Greedy_real_*.json"))
        rows = json.loads(files[0].read_text())
        assert len(rows) == 1  # replaced, not appended


class TestReportFiltering:
    def test_task_filter(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        payload = [
            {
                "task": "image",
                "method": "Greedy",
                "slo_ms": 150.0,
                "num_workers": 2,
                "load_qps": None,
                "accuracy": 0.7,
                "violation_rate": 0.01,
                "queries": 100,
            }
        ]
        (results / "image_Greedy_real_150.json").write_text(json.dumps(payload))
        text_payload = [dict(payload[0], task="text")]
        (results / "text_Greedy_real_100.json").write_text(
            json.dumps(text_payload)
        )
        assert (
            main(
                [
                    "report",
                    "--task",
                    "image",
                    "--trace",
                    "real",
                    "--results-dir",
                    str(results),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "image" in out
        assert "text" not in out
