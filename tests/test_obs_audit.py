"""Unit tests for the live guarantee auditor (repro.obs.audit)."""

import json
import math

import pytest

from repro.core.discretization import TimeGrid
from repro.core.guarantees import PolicyGuarantees, total_variation
from repro.core.policy import Action, Policy, PolicyMetadata
from repro.obs.audit import (
    BREACH,
    OK,
    UNCHECKED,
    AuditBounds,
    AuditConfig,
    GuaranteeAuditor,
    PageHinkley,
    hoeffding_interval,
    wilson_interval,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer


def make_policy(load_qps: float = 20.0, accuracy=None, violation=None) -> Policy:
    grid = TimeGrid(values=(0.0, 50.0, 100.0), slo_ms=100.0)
    actions = {
        (n, j): Action(model="fast", batch_size=n)
        for n in (1, 2)
        for j in range(3)
    }
    meta = PolicyMetadata(
        task="tiny",
        slo_ms=100.0,
        load_qps=load_qps,
        num_workers=1,
        expected_accuracy=accuracy,
        expected_violation_rate=violation,
    )
    return Policy(grid=grid, max_queue=2, actions=actions, metadata=meta)


class TestIntervals:
    def test_wilson_empty_window_is_trivial(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_contains_point_estimate(self):
        low, high = wilson_interval(5, 100)
        assert low <= 0.05 <= high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_shrinks_with_samples(self):
        w_small = wilson_interval(5, 50)
        w_large = wilson_interval(50, 500)
        assert (w_large[1] - w_large[0]) < (w_small[1] - w_small[0])

    def test_wilson_zero_successes_has_open_lower_bound(self):
        low, high = wilson_interval(0, 200)
        assert low == 0.0
        assert 0.0 < high < 0.05

    def test_wilson_confidence_widens(self):
        narrow = wilson_interval(10, 100, confidence=0.90)
        wide = wilson_interval(10, 100, confidence=0.99)
        assert wide[0] < narrow[0] and wide[1] > narrow[1]

    def test_wilson_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)

    def test_hoeffding_matches_formula(self):
        low, high = hoeffding_interval(0.5, 100, confidence=0.95)
        eps = math.sqrt(math.log(2.0 / 0.05) / 200.0)
        assert low == pytest.approx(0.5 - eps)
        assert high == pytest.approx(0.5 + eps)

    def test_hoeffding_clamps_to_unit_interval(self):
        assert hoeffding_interval(0.99, 10)[1] == 1.0
        assert hoeffding_interval(0.01, 10)[0] == 0.0

    def test_hoeffding_empty_is_trivial(self):
        assert hoeffding_interval(0.7, 0) == (0.0, 1.0)

    def test_hoeffding_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            hoeffding_interval(0.5, 10, confidence=0.0)


class TestPageHinkley:
    def test_no_alarm_at_reference(self):
        ph = PageHinkley(100.0, min_samples=5)
        assert all(ph.update(100.0) is None for _ in range(500))

    def test_tolerated_excursions_stay_silent(self):
        ph = PageHinkley(100.0, delta=0.15, min_samples=5)
        # +10% sits inside the 15% tolerance band.
        assert all(ph.update(110.0) is None for _ in range(500))

    def test_sustained_up_shift_alarms(self):
        ph = PageHinkley(100.0, delta=0.15, threshold=8.0, min_samples=30)
        outcomes = [ph.update(300.0) for _ in range(40)]
        assert "up" in outcomes
        assert outcomes[:29] == [None] * 29  # min_samples respected

    def test_sustained_down_shift_alarms(self):
        ph = PageHinkley(100.0, delta=0.15, threshold=8.0, min_samples=30)
        outcomes = [ph.update(10.0) for _ in range(40)]
        assert "down" in outcomes

    def test_reset_rearms_around_new_reference(self):
        ph = PageHinkley(100.0, min_samples=5)
        for _ in range(50):
            ph.update(300.0)
        ph.reset(300.0)
        assert ph.reference == 300.0
        assert all(ph.update(300.0) is None for _ in range(100))

    def test_rejects_nonpositive_reference(self):
        with pytest.raises(ValueError):
            PageHinkley(0.0)
        with pytest.raises(ValueError):
            PageHinkley(10.0).reset(-1.0)


class TestAuditConfig:
    def test_defaults_are_valid(self):
        cfg = AuditConfig()
        assert cfg.window_queries == 200
        assert cfg.ci_method == "wilson"

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AuditConfig(window_queries=0)

    def test_rejects_bad_ci_method(self):
        with pytest.raises(ValueError):
            AuditConfig(ci_method="bayes")

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            AuditConfig(confidence=1.5)


class TestAuditBounds:
    def test_from_guarantees_uses_headline_numbers(self):
        g = PolicyGuarantees(
            expected_accuracy=0.8,
            expected_violation_rate=0.02,
            per_epoch_accuracy=0.79,
            per_epoch_violation_rate=0.03,
            full_state_probability=0.0,
            idle_probability=0.5,
        )
        bounds = AuditBounds.from_guarantees(g)
        assert bounds.accuracy_floor == 0.8
        assert bounds.violation_ceiling == 0.02

    def test_auditor_accepts_guarantees_directly(self):
        g = PolicyGuarantees(0.8, 0.02, 0.79, 0.03, 0.0, 0.5)
        auditor = GuaranteeAuditor(g)
        assert auditor.bounds == AuditBounds(0.8, 0.02)

    def test_auditor_rejects_wrong_bounds_type(self):
        with pytest.raises(TypeError):
            GuaranteeAuditor("bounds")


def feed_completions(auditor, n, violations=0, accuracy=0.9, start_ms=0.0):
    """Emit ``n`` completion instants, the first ``violations`` unsatisfied."""
    for i in range(n):
        satisfied = i >= violations
        auditor.instant(
            "completion",
            "worker-0",
            start_ms + i,
            args={
                "query": i,
                "satisfied": satisfied,
                "accuracy": accuracy if satisfied else 0.0,
            },
        )


class TestWindowVerdicts:
    def test_clean_window_is_ok(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.7, violation_ceiling=0.10),
            config=AuditConfig(window_queries=100),
        )
        feed_completions(auditor, 100, violations=2, accuracy=0.9)
        (window,) = auditor.windows
        assert window.violation_verdict == OK
        assert window.accuracy_verdict == OK
        assert window.ok
        assert window.queries == 100
        assert window.violation_rate == pytest.approx(0.02)

    def test_violation_breach_beyond_ci(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.0, violation_ceiling=0.01),
            config=AuditConfig(window_queries=100),
        )
        feed_completions(auditor, 100, violations=30, accuracy=0.9)
        (window,) = auditor.windows
        assert window.violation_verdict == BREACH
        assert not window.ok
        assert window.violation_ci[0] > 0.01

    def test_accuracy_breach_beyond_ci(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.95, violation_ceiling=1.0),
            config=AuditConfig(window_queries=200),
        )
        feed_completions(auditor, 200, violations=0, accuracy=0.6)
        (window,) = auditor.windows
        assert window.accuracy_verdict == BREACH
        assert window.accuracy_ci[1] < 0.95

    def test_sampling_noise_alone_never_breaches(self):
        # Observed rate slightly above the ceiling, but within the CI.
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.0, violation_ceiling=0.05),
            config=AuditConfig(window_queries=50),
        )
        feed_completions(auditor, 50, violations=4, accuracy=0.9)  # 8% > 5%
        (window,) = auditor.windows
        assert window.violation_rate > 0.05
        assert window.violation_verdict == OK

    def test_no_bounds_means_unchecked(self):
        auditor = GuaranteeAuditor(config=AuditConfig(window_queries=10))
        feed_completions(auditor, 10)
        (window,) = auditor.windows
        assert window.violation_verdict == UNCHECKED
        assert window.accuracy_verdict == UNCHECKED
        assert window.ok

    def test_all_violation_window_leaves_accuracy_unchecked(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.9, violation_ceiling=0.01),
            config=AuditConfig(window_queries=20),
        )
        feed_completions(auditor, 20, violations=20)
        (window,) = auditor.windows
        assert window.accuracy_verdict == UNCHECKED
        assert window.violation_verdict == BREACH

    def test_hoeffding_ci_method_for_violations(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.0, violation_ceiling=0.5),
            config=AuditConfig(window_queries=100, ci_method="hoeffding"),
        )
        feed_completions(auditor, 100, violations=10)
        (window,) = auditor.windows
        eps = math.sqrt(math.log(2.0 / 0.05) / 200.0)
        assert window.violation_ci == (
            pytest.approx(max(0.0, 0.1 - eps)),
            pytest.approx(0.1 + eps),
        )

    def test_windows_split_at_configured_size(self):
        auditor = GuaranteeAuditor(config=AuditConfig(window_queries=25))
        feed_completions(auditor, 60)
        assert len(auditor.windows) == 2
        report = auditor.finalize(now_ms=100.0)
        assert len(report.windows) == 3  # partial tail closed at finalize
        assert report.windows[2].queries == 10
        assert report.total_queries == 60


class TestOccupancy:
    def test_decision_states_are_quantized_onto_policy_grid(self):
        auditor = GuaranteeAuditor(policy=make_policy())
        auditor.complete(
            "serve", "worker-0", 0.0, 5.0, args={"queue_len": 1, "slack_ms": 80.0}
        )
        auditor.complete(
            "serve", "worker-0", 10.0, 5.0, args={"queue_len": 2, "slack_ms": 10.0}
        )
        auditor.complete(
            "serve", "worker-0", 20.0, 5.0, args={"queue_len": 5, "slack_ms": 0.0}
        )
        occ = auditor.empirical_occupancy()
        assert occ == {
            "1,1": pytest.approx(1 / 3),
            "2,0": pytest.approx(1 / 3),
            "full": pytest.approx(1 / 3),
        }

    def test_tv_zero_when_empirical_matches_prediction(self):
        expected = {"1,1": 0.5, "2,0": 0.5}
        auditor = GuaranteeAuditor(
            policy=make_policy(),
            expected_occupancy=expected,
            config=AuditConfig(window_queries=4, min_occupancy_epochs=1),
        )
        for i in range(10):
            slack = 80.0 if i % 2 == 0 else 10.0
            queue = 1 if i % 2 == 0 else 2
            auditor.complete(
                "serve",
                "worker-0",
                float(i),
                1.0,
                args={"queue_len": queue, "slack_ms": slack},
            )
        report = auditor.finalize(now_ms=100.0)
        assert report.occupancy is not None
        assert report.occupancy.tv_distance == pytest.approx(0.0)
        assert not report.occupancy.diverged

    def test_divergence_flagged_above_threshold(self):
        auditor = GuaranteeAuditor(
            policy=make_policy(),
            expected_occupancy={"2,2": 1.0},
            config=AuditConfig(tv_threshold=0.3, min_occupancy_epochs=5),
        )
        for i in range(10):
            auditor.complete(
                "serve",
                "worker-0",
                float(i),
                1.0,
                args={"queue_len": 1, "slack_ms": 80.0},
            )
        report = auditor.finalize(now_ms=100.0)
        assert report.occupancy.tv_distance == pytest.approx(1.0)
        assert report.occupancy.trusted
        assert report.occupancy.diverged
        assert not report.ok
        assert "occupancy-divergence" in report.verdict

    def test_insufficient_epochs_are_not_trusted(self):
        auditor = GuaranteeAuditor(
            policy=make_policy(),
            expected_occupancy={"2,2": 1.0},
            config=AuditConfig(min_occupancy_epochs=100),
        )
        auditor.complete(
            "serve", "worker-0", 0.0, 1.0, args={"queue_len": 1, "slack_ms": 80.0}
        )
        report = auditor.finalize(now_ms=10.0)
        assert not report.occupancy.trusted
        assert not report.occupancy.diverged
        assert report.ok

    def test_total_variation_helper(self):
        assert total_variation({"a": 1.0}, {"a": 1.0}) == 0.0
        assert total_variation({"a": 1.0}, {"b": 1.0}) == 1.0
        assert total_variation({"a": 0.6, "b": 0.4}, {"a": 0.4, "b": 0.6}) == (
            pytest.approx(0.2)
        )


class TestDrift:
    def _arrive(self, auditor, rate_qps, count, start_ms=0.0):
        gap = 1000.0 / rate_qps
        for i in range(count):
            auditor.instant("arrival", "balancer", start_ms + i * gap)
        return start_ms + count * gap

    def test_overload_raises_one_up_alarm(self):
        auditor = GuaranteeAuditor(policy=make_policy(load_qps=20.0))
        self._arrive(auditor, rate_qps=100.0, count=200)
        assert len(auditor.drift_events) == 1
        event = auditor.drift_events[0]
        assert event.direction == "up"
        assert event.reference_qps == 20.0
        assert event.realized_qps > 20.0 * 1.15

    def test_underload_raises_down_alarm(self):
        auditor = GuaranteeAuditor(
            policy=make_policy(load_qps=100.0), reference_load_qps=100.0
        )
        self._arrive(auditor, rate_qps=10.0, count=100)
        assert len(auditor.drift_events) == 1
        assert auditor.drift_events[0].direction == "down"

    def test_on_reference_load_stays_silent(self):
        auditor = GuaranteeAuditor(policy=make_policy(load_qps=100.0))
        self._arrive(auditor, rate_qps=100.0, count=2000)
        assert auditor.drift_events == ()

    def test_policy_switch_rearms_detector(self):
        auditor = GuaranteeAuditor(policy=make_policy(load_qps=20.0))
        end = self._arrive(auditor, rate_qps=100.0, count=200)
        assert len(auditor.drift_events) == 1
        # Selector reacts: switches to the 100 QPS policy.
        auditor.note_policy(make_policy(load_qps=100.0), end)
        self._arrive(auditor, rate_qps=100.0, count=500, start_ms=end)
        assert len(auditor.drift_events) == 1  # no further alarms
        report = auditor.finalize(now_ms=end + 5000.0)
        assert report.policy_switches == 1

    def test_no_reference_disables_drift(self):
        auditor = GuaranteeAuditor()
        self._arrive(auditor, rate_qps=500.0, count=500)
        assert auditor.drift_events == ()


class TestAlertsAndMetrics:
    def test_alert_callbacks_fire_for_each_kind(self):
        alerts = []
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.95, violation_ceiling=0.01),
            policy=make_policy(load_qps=10.0),
            expected_occupancy={"2,2": 1.0},
            config=AuditConfig(
                window_queries=100, tv_threshold=0.3, min_occupancy_epochs=1
            ),
        )
        auditor.add_alert_callback(alerts.append)
        for i in range(50):
            auditor.complete(
                "serve",
                "worker-0",
                float(i),
                1.0,
                args={"queue_len": 1, "slack_ms": 80.0},
            )
        gap = 1000.0 / 200.0
        for i in range(200):
            auditor.instant("arrival", "balancer", i * gap)
        feed_completions(auditor, 100, violations=40, accuracy=0.5)
        kinds = {a.kind for a in alerts}
        assert kinds == {
            "violation-bound-breach",
            "accuracy-bound-breach",
            "occupancy-divergence",
            "load-drift",
        }

    def test_registry_receives_audit_metrics(self):
        registry = MetricsRegistry()
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.0, violation_ceiling=0.01),
            config=AuditConfig(window_queries=50),
            registry=registry,
        )
        feed_completions(auditor, 100, violations=30)
        (windows,) = registry.collect("audit_windows_total")
        assert windows.value == 2.0
        breaches = {
            dict(m.labels)["bound"]: m.value
            for m in registry.collect("audit_breaches_total")
        }
        assert breaches["violation"] == 1.0  # only the first window breaches
        assert breaches["accuracy"] == 0.0
        (gauge,) = registry.collect("audit_window_violation_rate")
        assert len(gauge.series) == 2

    def test_audit_events_flow_to_inner_tracer(self):
        inner = RecordingTracer()
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.0, violation_ceiling=1.0),
            config=AuditConfig(window_queries=10),
            inner=inner,
        )
        feed_completions(auditor, 30)
        names = [e.name for e in inner.events if e.track == "audit"]
        assert names.count("audit_window") == 3
        window_event = next(
            e for e in inner.events if e.name == "audit_window"
        )
        assert window_event.category == "audit"
        assert window_event.args["violation_verdict"] == OK


class TestFanOut:
    def test_forwarding_preserves_the_stream(self):
        direct = RecordingTracer()
        inner = RecordingTracer()
        auditor = GuaranteeAuditor(inner=inner)
        for sink in (direct, auditor):
            sink.instant("arrival", "balancer", 1.0, args={"query": 0})
            sink.complete("serve", "worker-0", 1.0, 5.0, args={"batch": 1})
            sink.counter("queue_depth", "worker-0", 1.0, 0)
            sink.instant(
                "completion",
                "worker-0",
                6.0,
                args={"query": 0, "satisfied": True, "accuracy": 0.9},
            )
        assert [s.name for s in inner.spans] == [s.name for s in direct.spans]
        assert [e.name for e in inner.events] == [e.name for e in direct.events]
        assert inner.events[-1].args == direct.events[-1].args

    def test_span_context_manager_forwards(self):
        inner = RecordingTracer()
        auditor = GuaranteeAuditor(inner=inner)
        with auditor.span("offline_phase", track="generator"):
            pass
        assert [s.name for s in inner.spans] == ["offline_phase"]

    def test_enabled_flag_set(self):
        assert GuaranteeAuditor().enabled is True


class TestReport:
    def test_finalize_is_idempotent(self):
        auditor = GuaranteeAuditor(config=AuditConfig(window_queries=10))
        feed_completions(auditor, 25)
        first = auditor.finalize(now_ms=100.0)
        second = auditor.finalize(now_ms=999.0)
        assert first is second
        assert len(first.windows) == 3

    def test_json_dict_is_serializable_and_complete(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.7, violation_ceiling=0.1),
            policy=make_policy(),
            expected_occupancy={"1,1": 1.0},
            config=AuditConfig(window_queries=10, min_occupancy_epochs=1),
        )
        auditor.complete(
            "serve", "worker-0", 0.0, 1.0, args={"queue_len": 1, "slack_ms": 80.0}
        )
        feed_completions(auditor, 10, violations=1, accuracy=0.9)
        report = auditor.finalize(now_ms=50.0)
        payload = json.loads(json.dumps(report.to_json_dict()))
        for key in (
            "verdict",
            "ok",
            "bounds",
            "windows",
            "violation_breaches",
            "accuracy_breaches",
            "occupancy",
            "drift_events",
            "policy_switches",
            "total_queries",
            "satisfied_queries",
            "observed_violation_rate",
            "observed_accuracy",
        ):
            assert key in payload
        assert payload["bounds"]["accuracy_floor"] == 0.7
        assert payload["windows"][0]["queries"] == 10

    def test_render_text_mentions_verdict_and_windows(self):
        auditor = GuaranteeAuditor(
            AuditBounds(accuracy_floor=0.7, violation_ceiling=0.1),
            config=AuditConfig(window_queries=10),
        )
        feed_completions(auditor, 10, accuracy=0.9)
        text = auditor.finalize(now_ms=50.0).render_text()
        assert "Audit verdict: ok" in text
        assert "Per-window bound audit" in text
        assert "load drift: none" in text

    def test_observed_aggregates(self):
        auditor = GuaranteeAuditor(config=AuditConfig(window_queries=100))
        feed_completions(auditor, 100, violations=10, accuracy=0.8)
        report = auditor.finalize(now_ms=200.0)
        assert report.total_queries == 100
        assert report.satisfied_queries == 90
        assert report.observed_violation_rate == pytest.approx(0.1)
        assert report.observed_accuracy == pytest.approx(0.8)
