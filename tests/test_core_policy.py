"""Tests for Policy / Action / serialization."""

import pytest

from repro.core.discretization import fixed_length_grid
from repro.core.policy import Action, Policy, PolicyMetadata
from repro.errors import PolicyError

GRID = fixed_length_grid(100.0, 4)  # values 0, 25, 50, 75, 100
META = PolicyMetadata(task="t", slo_ms=100.0, load_qps=10.0, num_workers=1)


def full_actions(max_queue=3):
    return {
        (n, j): Action(model=f"m{j % 2}", batch_size=n)
        for n in range(1, max_queue + 1)
        for j in range(len(GRID))
    }


class TestAction:
    def test_validation(self):
        with pytest.raises(PolicyError):
            Action(model="m", batch_size=0)
        with pytest.raises(PolicyError):
            Action(model="", batch_size=1)

    def test_frozen_equality(self):
        assert Action("m", 2) == Action("m", 2)
        assert Action("m", 2) != Action("m", 2, is_late=True)


class TestPolicy:
    def test_requires_complete_coverage(self):
        actions = full_actions()
        del actions[(2, 3)]
        with pytest.raises(PolicyError):
            Policy(grid=GRID, max_queue=3, actions=actions, metadata=META)

    def test_action_at(self):
        policy = Policy(grid=GRID, max_queue=3, actions=full_actions(), metadata=META)
        assert policy.action_at(2, 1).model == "m1"
        with pytest.raises(PolicyError):
            policy.action_at(4, 0)

    def test_action_for_quantizes_slack(self):
        policy = Policy(grid=GRID, max_queue=3, actions=full_actions(), metadata=META)
        # slack 60 -> bin 2 (value 50) -> model m0
        assert policy.action_for(1, 60.0).model == "m0"
        # slack 30 -> bin 1 -> m1
        assert policy.action_for(1, 30.0).model == "m1"
        # negative slack -> bin 0 -> m0
        assert policy.action_for(1, -5.0).model == "m0"

    def test_action_for_requires_queries(self):
        policy = Policy(grid=GRID, max_queue=3, actions=full_actions(), metadata=META)
        with pytest.raises(PolicyError):
            policy.action_for(0, 50.0)

    def test_overflow_queue_uses_full_state_action(self):
        policy = Policy(grid=GRID, max_queue=3, actions=full_actions(), metadata=META)
        action = policy.action_for(10, 50.0)
        assert action.batch_size == 10
        assert action.is_late
        assert action.model == policy.action_at(3, 0).model

    def test_json_roundtrip(self, tmp_path):
        policy = Policy(grid=GRID, max_queue=3, actions=full_actions(), metadata=META)
        path = tmp_path / "policy.json"
        policy.save(path)
        loaded = Policy.load(path)
        assert loaded.max_queue == 3
        assert loaded.grid.values == GRID.values
        assert loaded.metadata == META
        assert loaded.states() == policy.states()

    def test_malformed_json_rejected(self):
        with pytest.raises(PolicyError):
            Policy.from_json_dict({"metadata": {}})

    def test_late_flag_survives_roundtrip(self, tmp_path):
        actions = full_actions()
        actions[(1, 0)] = Action(model="m0", batch_size=1, is_late=True)
        policy = Policy(grid=GRID, max_queue=3, actions=actions, metadata=META)
        path = tmp_path / "p.json"
        policy.save(path)
        assert Policy.load(path).action_at(1, 0).is_late


class TestGeneratedPolicyRoundtrip:
    def test_solver_output_roundtrips(self, tiny_config, tmp_path):
        from repro.core.generator import generate_policy

        policy = generate_policy(tiny_config, with_guarantees=True).policy
        path = tmp_path / "gen.json"
        policy.save(path)
        loaded = Policy.load(path)
        assert loaded.states() == policy.states()
        assert loaded.metadata.expected_accuracy == pytest.approx(
            policy.metadata.expected_accuracy
        )
