"""Tests for the discrete-event simulator."""

import numpy as np
import pytest

from repro.arrivals.distributions import DeterministicArrivals, PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.balancers import RoundRobinBalancer, ShortestQueueBalancer
from repro.core.policy import Action
from repro.errors import SimulationError
from repro.selectors.base import ModelSelector, QueueScope
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig


class AlwaysModelSelector(ModelSelector):
    """Test selector: fixed model, whole queue, configurable scope."""

    def __init__(self, model_name: str, scope=QueueScope.PER_WORKER, cap=64):
        self._model = model_name
        self.queue_scope = scope
        self._cap = cap
        self.name = f"always-{model_name}"
        self.calls = 0

    def select(self, queue_length, earliest_slack_ms, now_ms, anticipated_load_qps):
        self.calls += 1
        return Action(model=self._model, batch_size=min(queue_length, self._cap))


def make_sim(models, slo=100.0, workers=2, **kwargs):
    return Simulation(
        SimulationConfig(
            model_set=models, slo_ms=slo, num_workers=workers, **kwargs
        )
    )


class TestConservation:
    def test_every_query_completes_exactly_once(self, tiny_models):
        trace = LoadTrace.constant(100.0, 10_000.0)
        sim = make_sim(tiny_models)
        metrics = sim.run(AlwaysModelSelector("fast"), trace)
        expected = len(
            __import__("repro.arrivals.processes", fromlist=["x"]).sample_arrival_times(
                trace, PoissonArrivals(100.0), np.random.default_rng(0)
            )
        )
        assert metrics.total_queries == expected

    def test_explicit_arrival_times(self, tiny_models):
        sim = make_sim(tiny_models)
        arrivals = np.array([0.0, 5.0, 10.0, 200.0])
        metrics = sim.run(
            AlwaysModelSelector("fast"),
            LoadTrace.constant(1.0, 300.0),
            arrival_times=arrivals,
        )
        assert metrics.total_queries == 4


class TestDeterministicScenario:
    def test_single_query_response_time(self, tiny_models):
        """One query, one worker: response == p95(fast, 1) == 10 ms."""
        sim = make_sim(tiny_models, workers=1)
        metrics = sim.run(
            AlwaysModelSelector("fast"),
            LoadTrace.constant(1.0, 100.0),
            arrival_times=np.array([0.0]),
        )
        assert metrics.mean_response_ms == pytest.approx(10.0)
        assert metrics.violation_rate == 0.0

    def test_slow_model_misses_deadline(self, tiny_models):
        """slow: l(1) = 64 ms > SLO 50 -> guaranteed violation."""
        sim = make_sim(tiny_models, slo=50.0, workers=1)
        metrics = sim.run(
            AlwaysModelSelector("slow"),
            LoadTrace.constant(1.0, 100.0),
            arrival_times=np.array([0.0]),
        )
        assert metrics.violation_rate == 1.0

    def test_batching_under_backlog(self, tiny_models):
        """Three simultaneous arrivals on one busy worker get batched."""
        sim = make_sim(tiny_models, workers=1)
        selector = AlwaysModelSelector("fast")
        metrics = sim.run(
            selector,
            LoadTrace.constant(1.0, 100.0),
            arrival_times=np.array([0.0, 1.0, 1.5, 2.0]),
        )
        # First decision serves query 0 alone; the rest batch together.
        assert metrics.decisions == 2
        assert metrics.mean_batch_size == pytest.approx(2.0)

    def test_round_robin_spreads_queries(self, tiny_models):
        """With 2 workers and simultaneous arrivals, both serve."""
        sim = make_sim(tiny_models, workers=2)
        metrics = sim.run(
            AlwaysModelSelector("fast"),
            LoadTrace.constant(1.0, 100.0),
            arrival_times=np.array([0.0, 0.0]),
        )
        assert metrics.decisions == 2
        assert metrics.mean_batch_size == 1.0


class TestCentralDiscipline:
    def test_idle_workers_grab_eagerly(self, tiny_models):
        sim = make_sim(tiny_models, workers=2)
        selector = AlwaysModelSelector("fast", scope=QueueScope.CENTRAL)
        metrics = sim.run(
            selector,
            LoadTrace.constant(1.0, 100.0),
            arrival_times=np.array([0.0, 0.0, 0.0]),
        )
        # Two workers grab immediately; the third query waits for a free
        # worker instead of batching (cap prevents it only if queue empty).
        assert metrics.total_queries == 3
        assert metrics.violation_rate == 0.0

    def test_batch_cap_respected(self, tiny_models):
        sim = make_sim(tiny_models, workers=1)
        selector = AlwaysModelSelector("fast", scope=QueueScope.CENTRAL, cap=2)
        metrics = sim.run(
            selector,
            LoadTrace.constant(1.0, 200.0),
            arrival_times=np.array([0.0, 1.0, 1.0, 1.0, 1.0]),
        )
        assert metrics.mean_batch_size <= 2.0


class TestStability:
    def test_sustainable_load_low_violations(self, tiny_models):
        """fast at batch>=2 sustains 100 QPS easily (2/18ms = 111 QPS)."""
        trace = LoadTrace.constant(80.0, 30_000.0)
        sim = make_sim(tiny_models, workers=1, monitor=OracleLoadMonitor(trace))
        metrics = sim.run(AlwaysModelSelector("fast"), trace)
        assert metrics.violation_rate < 0.05

    def test_overload_all_violations(self, tiny_models):
        """slow at 100 QPS on one worker is hopeless."""
        trace = LoadTrace.constant(100.0, 5_000.0)
        sim = make_sim(tiny_models, workers=1)
        metrics = sim.run(AlwaysModelSelector("slow"), trace)
        assert metrics.violation_rate > 0.9

    def test_more_workers_fewer_violations(self, tiny_models):
        trace = LoadTrace.constant(150.0, 20_000.0)
        rates = []
        for workers in (1, 4):
            sim = make_sim(tiny_models, workers=workers)
            rates.append(
                sim.run(AlwaysModelSelector("medium"), trace).violation_rate
            )
        assert rates[1] < rates[0]


class TestDeterminism:
    def test_same_seed_same_metrics(self, tiny_models):
        trace = LoadTrace.constant(100.0, 10_000.0)
        a = make_sim(tiny_models, seed=3).run(AlwaysModelSelector("fast"), trace)
        b = make_sim(tiny_models, seed=3).run(AlwaysModelSelector("fast"), trace)
        assert a.violation_rate == b.violation_rate
        assert a.total_queries == b.total_queries

    def test_different_seed_differs(self, tiny_models):
        trace = LoadTrace.constant(100.0, 10_000.0)
        a = make_sim(tiny_models, seed=3).run(AlwaysModelSelector("fast"), trace)
        b = make_sim(tiny_models, seed=4).run(AlwaysModelSelector("fast"), trace)
        assert a.total_queries != b.total_queries


class TestBalancers:
    def test_shortest_queue_balancer_used(self, tiny_models):
        trace = LoadTrace.constant(150.0, 10_000.0)
        sim = make_sim(
            tiny_models, workers=3, balancer=ShortestQueueBalancer()
        )
        metrics = sim.run(AlwaysModelSelector("medium"), trace)
        assert metrics.total_queries > 0

    def test_round_robin_reset_between_runs(self, tiny_models):
        balancer = RoundRobinBalancer()
        sim = make_sim(tiny_models, workers=2, balancer=balancer)
        trace = LoadTrace.constant(1.0, 50.0)
        a = sim.run(
            AlwaysModelSelector("fast"), trace, arrival_times=np.array([0.0])
        )
        b = sim.run(
            AlwaysModelSelector("fast"), trace, arrival_times=np.array([0.0])
        )
        assert a.total_queries == b.total_queries == 1


class TestValidation:
    def test_bad_config_rejected(self, tiny_models):
        with pytest.raises(SimulationError):
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=0)
        with pytest.raises(SimulationError):
            SimulationConfig(model_set=tiny_models, slo_ms=0.0, num_workers=1)

    def test_deterministic_pattern_supported(self, tiny_models):
        trace = LoadTrace.constant(50.0, 5_000.0)
        sim = make_sim(tiny_models, workers=1)
        metrics = sim.run(
            AlwaysModelSelector("fast"), trace, pattern=DeterministicArrivals(50.0)
        )
        assert metrics.total_queries == pytest.approx(250, abs=2)
