"""Tests for arrival-pattern analytics (§2.1's burst/lull premise)."""

import numpy as np
import pytest

from repro.arrivals.analysis import (
    dispersion_index,
    find_bursts,
    find_lulls,
    interarrival_cv,
    summarize,
)
from repro.arrivals.distributions import (
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
)
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace


def _sample(pattern, qps=200.0, duration_ms=120_000.0, seed=7):
    trace = LoadTrace.constant(qps, duration_ms)
    return sample_arrival_times(trace, pattern, np.random.default_rng(seed))


class TestInterarrivalCV:
    def test_poisson_near_one(self):
        times = _sample(PoissonArrivals(200.0))
        assert interarrival_cv(times) == pytest.approx(1.0, abs=0.1)

    def test_erlang_below_one(self):
        times = _sample(GammaArrivals(200.0, shape=8.0))
        assert interarrival_cv(times) == pytest.approx(1 / np.sqrt(8), abs=0.08)

    def test_bursty_above_one(self):
        times = _sample(GammaArrivals(200.0, shape=0.3))
        assert interarrival_cv(times) > 1.3

    def test_deterministic_zero(self):
        times = _sample(DeterministicArrivals(200.0))
        assert interarrival_cv(times) == pytest.approx(0.0, abs=1e-9)

    def test_requires_two_arrivals(self):
        with pytest.raises(ValueError):
            interarrival_cv(np.array([1.0]))

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            interarrival_cv(np.array([2.0, 1.0, 3.0]))


class TestDispersionIndex:
    def test_poisson_near_one(self):
        times = _sample(PoissonArrivals(200.0))
        assert dispersion_index(times) == pytest.approx(1.0, abs=0.25)

    def test_regular_below_one(self):
        times = _sample(GammaArrivals(200.0, shape=8.0))
        assert dispersion_index(times) < 0.6

    def test_window_validation(self):
        times = _sample(PoissonArrivals(200.0), duration_ms=3_000.0)
        with pytest.raises(ValueError):
            dispersion_index(times, window_ms=2_000.0)
        with pytest.raises(ValueError):
            dispersion_index(times, window_ms=0.0)


class TestLullsAndBursts:
    def test_poisson_has_lulls(self):
        """The paper's premise: Poisson arrivals exhibit exploitable lulls."""
        times = _sample(PoissonArrivals(200.0))
        lulls = find_lulls(times, threshold=3.0)
        assert len(lulls) > 0
        mean_gap = float(np.diff(times).mean())
        for start, end in lulls:
            assert end - start > 3.0 * mean_gap

    def test_deterministic_has_no_lulls(self):
        times = _sample(DeterministicArrivals(200.0))
        assert find_lulls(times, threshold=1.5) == []

    def test_bursty_process_has_bursts(self):
        # Short windows (~10 expected arrivals) expose burstiness that a
        # wide window would average away.
        times = _sample(GammaArrivals(200.0, shape=0.3))
        assert len(find_bursts(times, window_ms=50.0)) > 0

    def test_deterministic_has_no_bursts(self):
        times = _sample(DeterministicArrivals(200.0))
        assert find_bursts(times, window_ms=50.0, threshold=1.5) == []


class TestSummarize:
    def test_poisson_summary(self):
        times = _sample(PoissonArrivals(200.0))
        s = summarize(times)
        assert s.num_arrivals == times.shape[0]
        assert s.mean_rate_qps == pytest.approx(200.0, rel=0.1)
        assert s.poisson_like
        assert s.num_lulls > 0

    def test_regular_not_poisson_like(self):
        times = _sample(GammaArrivals(200.0, shape=10.0))
        assert not summarize(times).poisson_like

    def test_longest_lull_is_max_gap(self):
        times = np.array([0.0, 10.0, 1000.0, 1010.0, 1020.0, 1030.0, 5000.0])
        s = summarize(times, window_ms=500.0)
        assert s.longest_lull_ms == pytest.approx(3970.0)
