"""Tests for the high-level policy generation API."""

import math

import pytest

from repro.core.generator import PolicyGenerator, generate_policy


class TestGeneratePolicy:
    def test_produces_annotated_policy(self, tiny_config):
        result = generate_policy(tiny_config)
        assert result.iterations > 0
        assert result.runtime_s > 0.0
        meta = result.policy.metadata
        assert meta.expected_accuracy == pytest.approx(
            result.guarantees.expected_accuracy
        )
        assert meta.expected_violation_rate == pytest.approx(
            result.guarantees.expected_violation_rate
        )

    def test_without_guarantees_is_faster_and_nan(self, tiny_config):
        result = generate_policy(tiny_config, with_guarantees=False)
        assert math.isnan(result.guarantees.expected_accuracy)
        assert result.policy.metadata.expected_accuracy is None

    def test_deterministic(self, tiny_config):
        a = generate_policy(tiny_config).policy
        b = generate_policy(tiny_config).policy
        assert a.states() == b.states()

    def test_metadata_reflects_config(self, tiny_config):
        meta = generate_policy(tiny_config).policy.metadata
        assert meta.arrival_family == "PoissonArrivals"
        assert meta.view == "rr_marginal"
        assert meta.discretization == "FLD"
        assert meta.fld_resolution == 10


class TestPolicyGeneratorCache:
    def test_distinct_loads_distinct_policies(self, tiny_config):
        gen = PolicyGenerator(tiny_config)
        low = gen.generate(5.0)
        high = gen.generate(45.0)
        assert low.policy.load_qps == 5.0
        assert high.policy.load_qps == 45.0
        # Higher load must not have strictly higher expected accuracy.
        assert (
            high.guarantees.expected_accuracy
            <= low.guarantees.expected_accuracy + 1e-9
        )
