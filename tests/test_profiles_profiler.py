"""Tests for the simulated offline profiler."""

import pytest

from repro.profiles.profiler import SimulatedHardware, profile_model_set


class TestSimulatedHardware:
    def test_deterministic_for_seed(self, tiny_models):
        a = SimulatedHardware(seed=3)
        b = SimulatedHardware(seed=3)
        model = tiny_models.get("medium")
        assert a.execute(model, 2) == b.execute(model, 2)

    def test_time_repeated_length(self, tiny_models):
        hw = SimulatedHardware(seed=0)
        runs = hw.time_repeated(tiny_models.get("fast"), 1, 100)
        assert len(runs) == 100
        assert all(r > 0 for r in runs)


class TestProfileModelSet:
    def test_covers_all_models_and_batches(self, tiny_models):
        profiles = profile_model_set(tiny_models, max_batch_size=4, runs=30)
        assert set(profiles) == set(tiny_models.names)
        for profile in profiles.values():
            assert profile.max_batch_size == 4

    def test_empirical_p95_close_to_parametric(self, image_models):
        """Measured profiles should match the parametric ground truth, the
        same way the paper's measured profiles feed its policies."""
        subset = image_models.subset(["shufflenet_v2_x0_5", "efficientnet_b2"])
        profiles = profile_model_set(
            subset, max_batch_size=4, hardware=SimulatedHardware(seed=9), runs=400
        )
        for model in subset:
            for b in (1, 4):
                measured = profiles[model.name].latency_ms(b)
                assert measured == pytest.approx(model.latency_ms(b), rel=0.08)

    def test_monotone_despite_noise(self, image_models):
        subset = image_models.subset(["shufflenet_v2_x0_5"])
        profiles = profile_model_set(
            subset, max_batch_size=8, hardware=SimulatedHardware(seed=1), runs=10
        )
        values = [profiles["shufflenet_v2_x0_5"].latency_ms(b) for b in range(1, 9)]
        assert values == sorted(values)
