"""End-to-end observability tests.

The core guarantee: the trace is a sufficient statistic for the headline
numbers — folding the per-query lifecycle records back together must
reproduce ``SimulationMetrics`` *exactly*, for every queue discipline and
for dropped queries too.
"""

import json

import numpy as np
import pytest

from repro.arrivals.traces import LoadTrace
from repro.core.generator import generate_policy
from repro.obs.exporters import write_events_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.reconstruct import reconstruct_from_jsonl, reconstruct_metrics
from repro.obs.trace import RecordingTracer
from repro.selectors.base import QueueScope
from repro.sim.simulator import Simulation, SimulationConfig
from tests.test_sim_simulator import AlwaysModelSelector


def traced_run(
    models,
    selector,
    trace,
    workers=2,
    slo=100.0,
    seed=0,
    **cfg_kwargs,
):
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    sim = Simulation(
        SimulationConfig(
            model_set=models,
            slo_ms=slo,
            num_workers=workers,
            tracer=tracer,
            registry=registry,
            seed=seed,
            **cfg_kwargs,
        )
    )
    metrics = sim.run(selector, trace)
    return metrics, tracer, registry


class TestTraceReconstruction:
    def test_per_worker_discipline_exact(self, tiny_models):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(120.0, 10_000.0),
        )
        summary = reconstruct_metrics(tracer)
        assert summary.total_queries == metrics.total_queries
        assert summary.violation_rate == metrics.violation_rate
        assert summary.decisions == metrics.decisions
        assert summary.mean_batch_size == metrics.mean_batch_size
        assert summary.arrivals == metrics.total_queries

    def test_central_discipline_exact(self, tiny_models):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast", scope=QueueScope.CENTRAL),
            LoadTrace.constant(120.0, 10_000.0),
        )
        summary = reconstruct_metrics(tracer)
        assert summary.total_queries == metrics.total_queries
        assert summary.violation_rate == metrics.violation_rate
        assert summary.mean_batch_size == metrics.mean_batch_size

    def test_drop_late_exact(self, tiny_models):
        """Dropped queries appear as unsatisfied completions, so the
        reconstruction stays exact under overload with drop_late."""
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("slow"),
            LoadTrace.constant(150.0, 5_000.0),
            workers=1,
            slo=50.0,
            drop_late=True,
        )
        assert metrics.violation_rate > 0.0  # the scenario actually drops
        summary = reconstruct_metrics(tracer)
        assert summary.total_queries == metrics.total_queries
        assert summary.violation_rate == metrics.violation_rate
        assert summary.mean_batch_size == metrics.mean_batch_size

    def test_jsonl_roundtrip_exact(self, tiny_models, tmp_path):
        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 8_000.0),
        )
        path = write_events_jsonl(tracer, tmp_path / "events.jsonl")
        summary = reconstruct_from_jsonl(path)
        assert summary.total_queries == metrics.total_queries
        assert summary.violation_rate == metrics.violation_rate
        assert summary.mean_batch_size == metrics.mean_batch_size


class TestTraceContents:
    def test_expected_tracks(self, tiny_models):
        _, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 5_000.0),
            workers=2,
        )
        assert tracer.tracks() == ["balancer", "engine", "worker-0", "worker-1"]

    def test_serve_span_args(self, tiny_models):
        _, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 5_000.0),
        )
        serve = [s for s in tracer.spans if s.name == "serve"]
        assert serve
        for span in serve:
            assert span.args["model"] == "fast"
            assert span.args["batch"] >= 1
            assert span.duration_ms > 0.0

    def test_lifecycle_ordering(self, tiny_models):
        """Each query arrives before its service starts, and service
        starts before its completion."""
        _, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(50.0, 5_000.0),
        )
        arrival_ts = {}
        start_ts = {}
        completion_ts = {}
        for ev in tracer.events:
            if ev.is_counter:
                continue
            q = ev.args.get("query")
            if ev.name == "arrival":
                arrival_ts[q] = ev.ts_ms
            elif ev.name == "service_start":
                start_ts[q] = ev.ts_ms
            elif ev.name == "completion":
                completion_ts[q] = ev.ts_ms
        assert set(arrival_ts) == set(completion_ts)
        for q, ts in start_ts.items():
            assert arrival_ts[q] <= ts <= completion_ts[q]

    def test_queue_wait_recorded(self, tiny_models):
        _, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(120.0, 5_000.0),
        )
        waits = [
            ev.args["wait_ms"]
            for ev in tracer.events
            if not ev.is_counter and ev.name == "service_start"
        ]
        assert waits
        assert all(w >= 0.0 for w in waits)


class TestRegistryIntegration:
    def test_counters_match_metrics(self, tiny_models):
        metrics, _, registry = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 8_000.0),
        )
        (completions,) = registry.collect("sim_completions_total")
        (violations,) = registry.collect("sim_violations_total")
        assert completions.value == metrics.total_queries
        violation_count = round(metrics.violation_rate * metrics.total_queries)
        assert violations.value == violation_count

    def test_batch_histogram_matches_decisions(self, tiny_models):
        metrics, _, registry = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 8_000.0),
        )
        (batch,) = registry.collect("sim_batch_size")
        assert batch.count == metrics.decisions
        assert batch.mean == pytest.approx(metrics.mean_batch_size)

    def test_per_model_query_counters(self, tiny_models):
        metrics, _, registry = traced_run(
            tiny_models,
            AlwaysModelSelector("medium"),
            LoadTrace.constant(60.0, 5_000.0),
        )
        per_model = {
            dict(c.labels)["model"]: c.value
            for c in registry.collect("sim_queries_total")
        }
        assert per_model == {"medium": float(metrics.total_queries)}

    def test_load_gauges_published(self, tiny_models):
        _, _, registry = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 5_000.0),
        )
        (anticipated,) = registry.collect("sim_anticipated_load_qps")
        assert anticipated.series  # time series, not just a last value
        (realized,) = registry.collect("monitor_realized_load_qps")
        assert realized.series

    def test_registry_without_tracer(self, tiny_models):
        """Metrics work on their own; tracing is not required."""
        registry = MetricsRegistry()
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                num_workers=2,
                registry=registry,
            )
        )
        metrics = sim.run(
            AlwaysModelSelector("fast"), LoadTrace.constant(80.0, 5_000.0)
        )
        (completions,) = registry.collect("sim_completions_total")
        assert completions.value == metrics.total_queries


class TestGeneratorTracing:
    def test_pipeline_spans_nested(self, tiny_config):
        tracer = RecordingTracer()
        result = generate_policy(tiny_config, tracer=tracer)
        names = [s.name for s in tracer.spans]
        for expected in (
            "generate_policy",
            "build_worker_mdp",
            "value_iteration",
            "evaluate_policy",
        ):
            assert expected in names
        spans = {s.name: s for s in tracer.spans}
        root = spans["generate_policy"]
        assert spans["value_iteration"].parent_id == root.span_id
        assert result.policy is not None

    def test_vi_sweep_events(self, tiny_config):
        tracer = RecordingTracer()
        result = generate_policy(tiny_config, tracer=tracer)
        sweeps = [
            ev
            for ev in tracer.events
            if not ev.is_counter and ev.name == "vi_sweep"
        ]
        assert len(sweeps) == result.iterations
        iterations = [ev.args["iteration"] for ev in sweeps]
        assert iterations == list(range(1, len(sweeps) + 1))

    def test_residuals_surface_on_result(self, tiny_config):
        result = generate_policy(tiny_config, record_residuals=True)
        assert result.residuals is not None
        assert len(result.residuals) == result.iterations
        assert result.residuals[-1] <= 1e-7  # converged below tolerance

    def test_residuals_off_by_default(self, tiny_config):
        assert generate_policy(tiny_config).residuals is None


class TestSimulatorOverheadPath:
    def test_default_config_has_no_tracer(self, tiny_models):
        """Untraced runs carry no obs state and produce no records."""
        cfg = SimulationConfig(
            model_set=tiny_models, slo_ms=100.0, num_workers=1
        )
        assert cfg.tracer is None
        assert cfg.registry is None

    def test_traced_and_untraced_metrics_identical(self, tiny_models):
        trace = LoadTrace.constant(100.0, 8_000.0)
        arrivals = np.sort(np.random.default_rng(5).uniform(0, 8_000.0, 400))
        plain = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=2)
        ).run(AlwaysModelSelector("fast"), trace, arrival_times=arrivals)
        traced = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                num_workers=2,
                tracer=RecordingTracer(),
                registry=MetricsRegistry(),
            )
        ).run(AlwaysModelSelector("fast"), trace, arrival_times=arrivals)
        assert plain.violation_rate == traced.violation_rate
        assert plain.mean_batch_size == traced.mean_batch_size
        assert plain.total_queries == traced.total_queries


class TestCliTraceCommand:
    def test_emits_artifacts_and_consistency(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "obs"
        code = main(
            [
                "trace",
                "--m",
                "Greedy",
                "--workers",
                "2",
                "--load",
                "30",
                "--duration",
                "4",
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "(consistent)" in captured.out
        for artifact in ("events.jsonl", "trace.json", "metrics.prom"):
            assert (out_dir / artifact).exists()
        doc = json.loads((out_dir / "trace.json").read_text())
        assert doc["traceEvents"]
        prom = (out_dir / "metrics.prom").read_text()
        assert "# TYPE sim_response_ms histogram" in prom
        summary = reconstruct_from_jsonl(out_dir / "events.jsonl")
        assert summary.total_queries > 0
