"""Tail-latency attribution: phases, blame, burn rate, exemplars.

The contracts under test, matching the module's acceptance criteria:

- **Exactness.**  Every query's phase components sum to its end-to-end
  latency with float ``==`` (no tolerance), on both engines.
- **Engine equality.**  The fast engine's attribution snapshot equals
  the reference engine's, equals a replay of the recorded trace.
- **Parallel == serial.**  A ``jobs=2`` sweep with an attributor folds
  shards back into tables exactly equal to a serial sweep's.
- **Burn-rate alerting.**  Multi-window violation tracking fires (with
  hysteresis) through the same alert plumbing as the guarantee auditor.
- **Exemplars.**  Tail span chains are retained above the rolling
  quantile, capped at capacity, deterministically.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.arrivals.traces import LoadTrace
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import image_task
from repro.obs.attribution import (
    BurnWindow,
    DROPPED_MODEL,
    LatencyAttributor,
    attribution_from_jsonl,
    attribution_from_tracer,
    exact_phase_split,
)
from repro.obs.attribution import _worker_from_track
from repro.obs.audit import AuditAlert, GuaranteeAuditor
from repro.obs.exporters import write_events_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer
from repro.selectors import GreedyDeadlineSelector, JellyfishPlusSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig
from tests.conftest import make_tiny_model_set

TRACE = LoadTrace.constant(140.0, 6_000.0, name="attr-const")


def run_attributed(engine, trace=TRACE, selector=JellyfishPlusSelector, **kwargs):
    """One fresh attributed simulation; returns (metrics, attributor)."""
    attributor = LatencyAttributor(
        slo_ms=100.0, record_queries=True, burn_windows=(50, 200), **kwargs
    )
    sim = Simulation(
        SimulationConfig(
            model_set=make_tiny_model_set(),
            slo_ms=100.0,
            num_workers=2,
            max_batch_size=8,
            monitor=OracleLoadMonitor(trace),
            seed=3,
            attributor=attributor,
        )
    )
    metrics = sim.run(selector(), trace, engine=engine)
    return metrics, attributor


class TestExactPhaseSplit:
    def test_random_pairs_sum_exactly(self):
        rng = np.random.default_rng(11)
        responses = rng.uniform(0.0, 1e4, size=20_000)
        waits = responses * rng.uniform(0.0, 1.0, size=responses.size)
        for response, wait in zip(responses, waits):
            w, s = exact_phase_split(float(response), float(wait))
            assert w + s == float(response)

    def test_adversarial_magnitudes(self):
        rng = np.random.default_rng(13)
        for _ in range(2_000):
            response = float(10.0 ** rng.uniform(-3, 6))
            wait = response * float(rng.uniform(0.0, 1.0))
            w, s = exact_phase_split(response, wait)
            assert w + s == response

    def test_wait_moves_at_most_marginally(self):
        w, s = exact_phase_split(100.0, 30.0)
        assert w == pytest.approx(30.0)
        assert w + s == 100.0


class TestEngineAttribution:
    def test_phases_sum_exactly_both_engines(self):
        for engine in ("fast", "reference"):
            metrics, attributor = run_attributed(engine)
            assert metrics.total_queries > 50
            assert len(attributor.breakdowns) == metrics.total_queries
            for b in attributor.breakdowns:
                total = (
                    b.queue_wait_ms + b.batch_wait_ms + b.service_ms + b.drop_ms
                )
                assert total == b.response_ms

    def test_fast_equals_reference_snapshot(self):
        _, fast = run_attributed("fast")
        _, reference = run_attributed("reference")
        assert fast.to_json_dict() == reference.to_json_dict()

    def test_attributor_does_not_change_metrics(self):
        trace = TRACE
        sim_cfg = dict(
            model_set=make_tiny_model_set(),
            slo_ms=100.0,
            num_workers=2,
            max_batch_size=8,
            monitor=OracleLoadMonitor(trace),
            seed=3,
        )
        plain = Simulation(SimulationConfig(**sim_cfg)).run(
            JellyfishPlusSelector(), trace, engine="fast"
        )
        attributed, _ = run_attributed("fast")
        assert attributed == plain

    def test_attributor_alone_keeps_fast_engine(self):
        # engine="auto" must not fall back to the reference loop just
        # because an attributor is attached (tracer/registry still do).
        metrics, attributor = run_attributed("auto")
        fast, _ = run_attributed("fast")
        assert metrics == fast
        assert attributor.to_json_dict()["totals"]["queries"] > 0

    def test_replay_recorded_trace_equals_live(self):
        tracer = RecordingTracer()
        trace = TRACE
        sim = Simulation(
            SimulationConfig(
                model_set=make_tiny_model_set(),
                slo_ms=100.0,
                num_workers=2,
                max_batch_size=8,
                monitor=OracleLoadMonitor(trace),
                seed=3,
                tracer=tracer,
            )
        )
        sim.run(JellyfishPlusSelector(), trace)
        replayed = attribution_from_tracer(
            tracer, slo_ms=100.0, burn_windows=(50, 200)
        )
        _, live = run_attributed("reference")
        assert replayed.to_json_dict() == live.to_json_dict()

    def test_jsonl_fold_equals_tracer_fold(self, tmp_path):
        tracer = RecordingTracer()
        trace = TRACE
        sim = Simulation(
            SimulationConfig(
                model_set=make_tiny_model_set(),
                slo_ms=100.0,
                num_workers=2,
                max_batch_size=8,
                monitor=OracleLoadMonitor(trace),
                seed=3,
                tracer=tracer,
            )
        )
        sim.run(JellyfishPlusSelector(), trace)
        path = write_events_jsonl(tracer, tmp_path / "events.jsonl")
        from_file = attribution_from_jsonl(path, slo_ms=100.0)
        from_tracer = attribution_from_tracer(tracer, slo_ms=100.0)
        # Single-cell logs replay without id collisions: aggregate
        # tables match the tracer fold exactly.
        assert from_file.rows() == from_tracer.rows()

    def test_drops_attributed(self):
        trace = LoadTrace.constant(500.0, 3_000.0, name="attr-overload")
        attributor = LatencyAttributor(slo_ms=100.0, record_queries=True)
        sim = Simulation(
            SimulationConfig(
                model_set=make_tiny_model_set(),
                slo_ms=100.0,
                num_workers=2,
                max_batch_size=8,
                monitor=OracleLoadMonitor(trace),
                seed=3,
                drop_late=True,
                attributor=attributor,
            )
        )
        metrics = sim.run(GreedyDeadlineSelector(), trace, engine="fast")
        snap = attributor.to_json_dict()
        dropped_rows = [r for r in snap["rows"] if r["model"] == DROPPED_MODEL]
        dropped = metrics.model_query_counts.get(DROPPED_MODEL, 0)
        assert dropped > 0, "overload scenario should drop queries"
        assert sum(r["dropped"] for r in dropped_rows) == dropped
        for b in attributor.breakdowns:
            if b.dropped:
                assert b.queue_wait_ms == b.service_ms == 0.0
                assert b.drop_ms == b.response_ms


class TestParallelSerialEquality:
    def test_sweep_parallel_matches_serial(self, tmp_path):
        from repro.experiments.runner import clear_caches

        scale = ExperimentScale.smoke()
        task = image_task()
        cells = [
            SweepCell(
                method=method,
                task=task,
                slo_ms=task.slos_ms[0],
                num_workers=scale.constant_workers_image,
                trace=LoadTrace.constant(
                    load,
                    scale.constant_duration_s * 1000.0,
                    name=f"attr-{load:g}",
                ),
                seed=23,
                oracle_load=True,
            )
            for load in (20.0, 50.0)
            for method in ("JF", "Greedy")
        ]
        clear_caches()
        serial_attr = LatencyAttributor(slo_ms=task.slos_ms[0])
        serial = run_sweep(cells, scale, attributor=serial_attr)
        clear_caches()
        parallel_attr = LatencyAttributor(slo_ms=task.slos_ms[0])
        run_dir = tmp_path / "run"
        parallel = run_sweep(
            cells,
            scale,
            jobs=2,
            attributor=parallel_attr,
            run_dir=run_dir,
        )
        assert parallel == serial
        # The tentpole contract: parallel attribution tables exactly
        # equal the serial ones (float ==, not approx).
        assert parallel_attr.to_json_dict() == serial_attr.to_json_dict()
        # The merged artifact carries the attribution snapshot.
        artifact = json.loads((run_dir / "attribution.json").read_text())
        assert artifact["totals"]["queries"] == (
            parallel_attr.to_json_dict()["totals"]["queries"]
        )
        # Pool workers published live per-pid feeds (`ramsis top` input);
        # each query lands in exactly one worker, so the feeds partition
        # the merged total.
        feeds = list(run_dir.glob("attribution-*.json"))
        assert feeds, "run_sweep workers should publish live attribution"
        feed_total = sum(
            json.loads(p.read_text())["totals"]["queries"] for p in feeds
        )
        assert feed_total == artifact["totals"]["queries"]


class TestBlame:
    def test_profiled_blame_charges_gap_to_fastest(self):
        models = list(make_tiny_model_set())
        attributor = LatencyAttributor(slo_ms=100.0, models=models)
        # Two decisions on worker 0 at batch 2: "slow" vs "fast".
        by_name = {m.name: m for m in models}
        attributor.observe_decision(0, "slow", 2, by_name["slow"].latency_ms(2))
        attributor.observe_decision(0, "fast", 2, by_name["fast"].latency_ms(2))
        for qid, model in ((1, "slow"), (2, "fast")):
            attributor.observe_service_start(qid, 0, model, 2, 5.0)
            attributor.observe_completion(qid, 0, model, 50.0, True)
        rows = {r["model"]: r for r in attributor.rows()}
        gap = by_name["slow"].latency_ms(2) - by_name["fast"].latency_ms(2)
        assert rows["fast"]["blame_ms"] == 0.0
        assert rows["slow"]["blame_ms"] == pytest.approx(gap)
        assert rows["slow"]["blame_per_query_ms"] == pytest.approx(gap / 2.0)

    def test_observed_blame_without_model_set(self):
        attributor = LatencyAttributor()
        # Same (worker, batch): mean 40 ms for "a", 10 ms for "b".
        attributor.observe_decision(0, "a", 1, 40.0)
        attributor.observe_decision(0, "b", 1, 10.0)
        for qid, model in ((1, "a"), (2, "b")):
            attributor.observe_service_start(qid, 0, model, 1, 0.0)
            attributor.observe_completion(qid, 0, model, 40.0, True)
        rows = {r["model"]: r for r in attributor.rows()}
        assert rows["b"]["blame_ms"] == 0.0
        assert rows["a"]["blame_ms"] == pytest.approx(30.0)


class TestBurnRate:
    def feed(self, attributor, outcomes):
        for i, satisfied in enumerate(outcomes):
            attributor.observe_completion(i, 0, "m", 10.0, satisfied, t_ms=i)

    def test_window_rates(self):
        window = BurnWindow(4)
        for v in (True, False, True, True):
            window.push(v)
        assert window.full
        assert window.violations == 3
        assert window.rate == 0.75
        window.push(False)  # evicts the first True
        assert window.violations == 2
        assert window.rate == 0.5

    def test_alert_fires_once_with_hysteresis(self):
        alerts = []
        attributor = LatencyAttributor(
            slo_ms=100.0,
            burn_windows=(10,),
            burn_threshold=0.5,
            alert_sink=alerts.append,
        )
        # 10 good (arms, burn 0), then 10 bad: crossing fires exactly once.
        self.feed(attributor, [True] * 10 + [False] * 10)
        assert len(alerts) == 1
        assert alerts[0].kind == "slo-burn-rate"
        # Recover below threshold, then breach again: fires once more.
        self.feed(attributor, [True] * 10)
        self.feed(attributor, [False] * 10)
        assert len(alerts) == 2

    def test_burn_uses_violation_budget(self):
        attributor = LatencyAttributor(
            burn_windows=(10,), violation_budget=0.2, burn_threshold=1.0
        )
        self.feed(attributor, [True] * 5 + [False] * 5)
        snap = attributor.to_json_dict()["burn"]["windows"][0]
        assert snap["rate"] == 0.5
        assert snap["burn"] == pytest.approx(2.5)

    def test_alerts_feed_guarantee_auditor_stream(self):
        auditor = GuaranteeAuditor()
        seen = []
        auditor.add_alert_callback(seen.append)
        attributor = LatencyAttributor(
            burn_windows=(5,), burn_threshold=0.5,
            alert_sink=auditor.emit_alert,
        )
        self.feed(attributor, [True] * 5 + [False] * 5)
        assert len(seen) == 1
        assert isinstance(seen[0], AuditAlert)
        assert seen[0].kind == "slo-burn-rate"

    def test_registry_metrics_published(self):
        registry = MetricsRegistry()
        attributor = LatencyAttributor(
            burn_windows=(5,), burn_threshold=0.5, registry=registry
        )
        self.feed(attributor, [True] * 5 + [False] * 5)
        from repro.obs.exporters import prometheus_text

        text = prometheus_text(registry)
        assert "audit_burn_rate" in text
        assert "audit_burn_alerts_total" in text
        assert "attribution_queries_total" in text


class TestExemplars:
    def test_capacity_and_threshold(self):
        attributor = LatencyAttributor(
            exemplar_quantile=0.9, exemplar_capacity=4, exemplar_warmup=50
        )
        rng = np.random.default_rng(5)
        latencies = rng.uniform(10.0, 20.0, size=400)
        latencies[::50] += 1000.0  # unambiguous tail
        for i, lat in enumerate(latencies):
            attributor.observe_service_start(i, 0, "m", 1, lat / 4.0)
            attributor.observe_completion(i, 0, "m", float(lat), True, t_ms=i)
        chains = attributor.to_json_dict()["exemplars"]["chains"]
        assert 0 < len(chains) <= 4
        # Retained chains are tail latencies, sorted worst-first, with
        # the full phase decomposition attached.
        assert all(c["response_ms"] > 1000.0 for c in chains)
        assert chains == sorted(
            chains, key=lambda c: -c["response_ms"]
        )
        for c in chains:
            assert c["queue_wait_ms"] + c["service_ms"] == c["response_ms"]
            assert c["threshold_ms"] <= c["response_ms"]

    def test_no_exemplars_before_warmup(self):
        attributor = LatencyAttributor(exemplar_warmup=1000)
        for i in range(100):
            attributor.observe_completion(i, 0, "m", 1e6, True)
        assert attributor.to_json_dict()["exemplars"]["chains"] == []


class TestPlumbing:
    def test_worker_from_track(self):
        assert _worker_from_track("worker-3") == 3
        assert _worker_from_track("w1/worker-7") == 7
        assert _worker_from_track("balancer") == -1
        assert _worker_from_track("worker-x") == -1

    def test_tracer_tap_forwards_to_inner(self):
        inner = RecordingTracer()
        attributor = LatencyAttributor(slo_ms=100.0, inner=inner)
        attributor.complete(
            "serve", "worker-0", 0.0, 12.0,
            args={"worker": 0, "model": "m", "batch": 2},
        )
        attributor.instant(
            "service_start", "worker-0", 0.0,
            args={"query": 1, "model": "m", "batch": 2, "wait_ms": 3.0},
        )
        attributor.instant(
            "completion", "worker-0", 15.0,
            args={
                "query": 1, "worker": 0, "model": "m",
                "satisfied": True, "response_ms": 15.0,
            },
        )
        assert len(inner.spans) == 1
        assert len(inner.events) == 2
        rows = attributor.rows()
        assert rows[0]["queries"] == 1
        assert rows[0]["queue_wait_ms"] + rows[0]["service_ms"] == 15.0

    def test_render_text_smoke(self):
        _, attributor = run_attributed("fast")
        text = attributor.render_text(limit=3)
        assert "Latency attribution" in text
        assert "SLO burn rate" in text
        assert "Tail exemplars" in text

    def test_jsonl_fold_skips_torn_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps(
            {
                "type": "instant",
                "name": "completion",
                "track": "worker-0",
                "ts_ms": 9.0,
                "args": {
                    "query": 1, "worker": 0, "model": "m",
                    "satisfied": True, "response_ms": 9.0,
                },
            }
        )
        path.write_text(good + "\n" + good[: len(good) // 2])
        attributor = attribution_from_jsonl(path)
        assert attributor.to_json_dict()["totals"]["queries"] == 1


class TestRuntimeAttribution:
    def test_controller_attribution_and_snapshots(self, tmp_path):
        from repro.profiles.zoo import build_image_model_set
        from repro.runtime.controller import CentralController

        attributor = LatencyAttributor(slo_ms=150.0, record_queries=True)
        controller = CentralController(
            build_image_model_set(),
            slo_ms=150.0,
            num_workers=2,
            time_scale=0.01,
            tracer=attributor,
            snapshot_dir=str(tmp_path),
            snapshot_interval_s=0.05,
        )
        report = controller.serve(
            JellyfishPlusSelector(), LoadTrace.constant(40.0, 1_500.0)
        )
        snap = attributor.to_json_dict()
        assert snap["totals"]["queries"] == report.submitted
        for b in attributor.breakdowns:
            total = (
                b.queue_wait_ms + b.batch_wait_ms + b.service_ms + b.drop_ms
            )
            assert total == b.response_ms
        # The snapshot thread published at least the final frame.
        feeds = list(tmp_path.glob("attribution-*.json"))
        assert feeds
        published = json.loads(feeds[0].read_text())
        assert published["totals"]["queries"] == report.submitted
