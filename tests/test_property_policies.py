"""Property-based tests on generated policies and guarantees.

Randomized model sets + loads: generated policies must always satisfy the
structural guarantees of §4-§5 (coverage, slack feasibility, probabilistic
bounds within [0, 1], monotone conservatism in load).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet


@st.composite
def random_model_sets(draw):
    """2-4 models with increasing accuracy and per-item latency."""
    count = draw(st.integers(min_value=2, max_value=4))
    accuracies = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.3, max_value=0.99),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    per_items = sorted(
        draw(
            st.lists(
                st.floats(min_value=2.0, max_value=60.0),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    models = [
        ModelProfile(
            name=f"m{i}",
            accuracy=accuracies[i],
            latency=LinearLatencyModel(
                overhead_ms=2.0, per_item_ms=per_items[i], std_ms=0.0
            ),
        )
        for i in range(count)
    ]
    return ModelSet(models, task="random")


class TestGeneratedPolicyProperties:
    @given(
        models=random_model_sets(),
        load=st.floats(min_value=2.0, max_value=80.0),
        slo=st.floats(min_value=60.0, max_value=300.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_policy_structurally_sound(self, models, load, slo):
        config = WorkerMDPConfig(
            model_set=models,
            slo_ms=slo,
            arrivals=PoissonArrivals(load),
            max_batch_size=6,
            fld_resolution=8,
        )
        result = generate_policy(config)
        policy = result.policy

        # Complete coverage.
        assert len(policy.states()) == policy.max_queue * len(policy.grid)

        # Every non-late action fits the quantized slack; every late action
        # drains the whole queue on the fastest model.
        fastest = models.fastest().name
        for (n, j), action in policy.states().items():
            model = models.get(action.model)
            if action.is_late:
                assert action.model == fastest
                assert action.batch_size == n
            else:
                assert (
                    model.latency_ms(action.batch_size)
                    <= policy.grid[j] + 1e-9
                )

        # Guarantees are probabilities.
        g = result.guarantees
        assert 0.0 <= g.expected_accuracy <= 1.0
        assert 0.0 <= g.expected_violation_rate <= 1.0

        # Accuracy bounded by the best model's accuracy.
        assert g.expected_accuracy <= models.most_accurate().accuracy + 1e-9

    @given(models=random_model_sets())
    @settings(max_examples=8, deadline=None)
    def test_more_load_never_higher_accuracy(self, models):
        slo = 200.0

        def accuracy(load):
            config = WorkerMDPConfig(
                model_set=models,
                slo_ms=slo,
                arrivals=PoissonArrivals(load),
                max_batch_size=6,
                fld_resolution=8,
            )
            return generate_policy(config).guarantees.expected_accuracy

        low, high = accuracy(3.0), accuracy(60.0)
        assert high <= low + 0.03

    @given(
        models=random_model_sets(),
        load=st.floats(min_value=2.0, max_value=60.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_json_roundtrip_preserves_actions(self, models, load, tmp_path_factory):
        from repro.core.policy import Policy

        config = WorkerMDPConfig(
            model_set=models,
            slo_ms=150.0,
            arrivals=PoissonArrivals(load),
            max_batch_size=5,
            fld_resolution=6,
        )
        policy = generate_policy(config, with_guarantees=False).policy
        data = policy.to_json_dict()
        restored = Policy.from_json_dict(data)
        assert restored.states() == policy.states()
