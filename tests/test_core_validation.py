"""Tests validating MDP kernels against Monte-Carlo chain replays."""

import pytest
from dataclasses import replace

from repro.core.config import TransitionView, WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.core.guarantees import evaluate_policy, stationary_distribution
from repro.core.mdp import build_worker_mdp
from repro.core.solvers import value_iteration
from repro.core.validation import simulate_chain
from repro.arrivals.distributions import PoissonArrivals


def _solve(config):
    mdp = build_worker_mdp(config)
    policy = mdp.extract_policy(value_iteration(mdp).values)
    return mdp, policy


class TestChainAgreement:
    def test_guarantee_bounds_hold_empirically(self, tiny_config):
        config = tiny_config.with_load(25.0)
        mdp, policy = _solve(config)
        guarantees = evaluate_policy(mdp, policy)
        stats = simulate_chain(mdp, policy, num_epochs=60_000, seed=1)
        # §5.1: expectation lower-bounds accuracy, upper-bounds violations.
        assert stats.accuracy_per_satisfied_query >= (
            guarantees.expected_accuracy - 0.02
        )
        assert stats.violation_rate <= guarantees.expected_violation_rate + 0.02

    def test_stationary_distribution_matches_visits(self, tiny_config):
        """Per-epoch visit frequencies track the stationary distribution."""
        config = tiny_config.with_load(25.0)
        mdp, policy = _solve(config)
        dist = stationary_distribution(mdp, policy)
        stats = simulate_chain(mdp, policy, num_epochs=120_000, seed=2)
        sp = mdp.space
        assert stats.idle_fraction == pytest.approx(
            float(dist[sp.EMPTY]), abs=0.03
        )
        # Check the five most likely occupied states.
        occupied = [
            (float(dist[sp.index(n, j)]), (n, j))
            for n in range(1, mdp.max_queue + 1)
            for j in range(len(mdp.grid))
        ]
        occupied.sort(reverse=True)
        for prob, state in occupied[:5]:
            assert stats.state_frequency.get(state, 0.0) == pytest.approx(
                prob, abs=0.03
            )

    @pytest.mark.parametrize(
        "view",
        [
            TransitionView.POISSON_SPLIT,
            TransitionView.ROUND_ROBIN_MARGINAL,
        ],
    )
    def test_views_validated_by_replay(self, tiny_models, view):
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(75.0),
            num_workers=3,
            max_batch_size=8,
            fld_resolution=10,
            view=view,
        )
        mdp, policy = _solve(config)
        guarantees = evaluate_policy(mdp, policy)
        stats = simulate_chain(mdp, policy, num_epochs=60_000, seed=3)
        # The marginal view models the true Erlang arrivals; Poisson split
        # is conservative — either way the bounds must hold on a replay
        # against the *view's own* arrival process.
        assert stats.accuracy_per_satisfied_query >= (
            guarantees.expected_accuracy - 0.02
        )
        assert stats.violation_rate <= guarantees.expected_violation_rate + 0.02

    def test_drop_mode_replay(self, tiny_config):
        config = replace(tiny_config.with_load(45.0), drop_late=True)
        mdp, policy = _solve(config)
        stats = simulate_chain(mdp, policy, num_epochs=40_000, seed=4)
        assert stats.queries_served > 0
        assert 0.0 <= stats.violation_rate <= 1.0

    def test_deterministic_for_seed(self, tiny_config):
        mdp, policy = _solve(tiny_config)
        a = simulate_chain(mdp, policy, num_epochs=20_000, seed=5)
        b = simulate_chain(mdp, policy, num_epochs=20_000, seed=5)
        assert a.violation_rate == b.violation_rate
        assert a.state_frequency == b.state_frequency
