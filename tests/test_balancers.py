"""Tests for load balancers and the Appendix I SQF rate."""

import pytest

from repro.balancers import (
    RoundRobinBalancer,
    ShortestQueueBalancer,
    sqf_worker_rate_qps,
)


class TestRoundRobin:
    def test_cycles(self):
        b = RoundRobinBalancer()
        picks = [b.assign([0, 0, 0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_ignores_queue_lengths(self):
        b = RoundRobinBalancer()
        assert b.assign([100, 0]) == 0

    def test_reset(self):
        b = RoundRobinBalancer()
        b.assign([0, 0])
        b.reset()
        assert b.assign([0, 0]) == 0


class TestShortestQueue:
    def test_picks_minimum(self):
        b = ShortestQueueBalancer()
        assert b.assign([3, 1, 2]) == 1

    def test_ties_break_low_index(self):
        b = ShortestQueueBalancer()
        assert b.assign([2, 2, 2]) == 0


class TestSqfWorkerRate:
    def test_short_queue_gets_even_share(self, image_models):
        rate = sqf_worker_rate_qps(
            240.0, 6, queue_length=0, model_set=image_models, slo_ms=300.0
        )
        assert rate == pytest.approx(40.0)
        rate2 = sqf_worker_rate_qps(
            240.0, 6, queue_length=2, model_set=image_models, slo_ms=300.0
        )
        assert rate2 == pytest.approx(40.0)

    def test_long_queue_rate_reduced(self, image_models):
        """A worker whose queue is long receives (lambda/K mu)^K mu, which
        under SQF is below the even share when lambda < K mu (the regime
        the Gupta et al. approximation targets)."""
        even = 10.0
        busy = sqf_worker_rate_qps(
            60.0, 6, queue_length=3, model_set=image_models, slo_ms=300.0
        )
        assert busy < even

    def test_heavy_traffic_rate_exceeds_share(self, image_models):
        """Past mu the approximation inflates the busy-worker rate — the
        conservative direction for policy generation."""
        busy = sqf_worker_rate_qps(
            240.0, 6, queue_length=3, model_set=image_models, slo_ms=300.0
        )
        assert busy > 40.0

    def test_rate_positive(self, image_models):
        for n in (0, 3, 10):
            assert (
                sqf_worker_rate_qps(
                    100.0, 4, queue_length=n, model_set=image_models, slo_ms=500.0
                )
                > 0.0
            )

    def test_invalid_inputs(self, image_models):
        with pytest.raises(ValueError):
            sqf_worker_rate_qps(100.0, 0, 0, image_models, 300.0)
        with pytest.raises(ValueError):
            sqf_worker_rate_qps(100.0, 2, -1, image_models, 300.0)

    def test_falls_back_when_no_model_sustains(self, tiny_models):
        # Absurd load: no model sustains; mu falls back to fastest model.
        rate = sqf_worker_rate_qps(
            1e6, 2, queue_length=3, model_set=tiny_models, slo_ms=100.0
        )
        assert rate > 0.0
