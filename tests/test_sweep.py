"""Tests for the parallel experiment sweep engine.

The contract under test: a parallel sweep returns the *same*
``MethodPoint`` sequence, in the same order, as a serial one — and the
persistent policy cache lets sweep processes share solved policies.
Parallel runs here use ``jobs=2`` regardless of host core count; the
executor still exercises the full submit/collect path on one CPU.
"""

from __future__ import annotations

import pytest

from repro.arrivals.traces import LoadTrace
from repro.cache import PolicyCache
from repro.experiments.runner import clear_caches
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_cell, run_sweep
from repro.experiments.tasks import image_task
from repro.obs.reconstruct import reconstruct_metrics
from repro.obs.trace import RecordingTracer


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Isolate the runner's in-memory memo between serial/parallel runs."""
    clear_caches()
    yield
    clear_caches()


def smoke_cells(methods=("RAMSIS", "JF"), loads=(20.0, 50.0)):
    scale = ExperimentScale.smoke()
    task = image_task()
    slo = task.slos_ms[0]
    cells = [
        SweepCell(
            method=method,
            task=task,
            slo_ms=slo,
            num_workers=scale.constant_workers_image,
            trace=LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"sw-{load:g}"
            ),
            seed=23,
            oracle_load=True,
        )
        for load in loads
        for method in methods
    ]
    return cells, scale


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path):
        cells, scale = smoke_cells()
        serial = run_sweep(cells, scale)
        clear_caches()
        parallel = run_sweep(
            cells, scale, jobs=2, cache=PolicyCache(directory=tmp_path)
        )
        assert parallel == serial

    def test_results_positional_order(self):
        cells, scale = smoke_cells()
        points = run_sweep(cells, scale)
        assert [p.method for p in points] == [c.method for c in cells]
        assert [p.load_qps for p in points] == [c.trace.qps[0] for c in cells]

    def test_run_cell_matches_sweep(self):
        cells, scale = smoke_cells(methods=("JF",), loads=(20.0,))
        direct = run_cell(cells[0], scale)
        swept = run_sweep(cells, scale)
        assert swept == [direct]

    def test_stochastic_seed_is_deterministic(self):
        cells, scale = smoke_cells(methods=("JF",), loads=(50.0,))
        cell = SweepCell(
            method=cells[0].method,
            task=cells[0].task,
            slo_ms=cells[0].slo_ms,
            num_workers=cells[0].num_workers,
            trace=cells[0].trace,
            seed=cells[0].seed,
            oracle_load=True,
            stochastic_seed=3,
        )
        assert run_cell(cell, scale) == run_cell(cell, scale)
        # Stochastic execution differs from the deterministic p95 variant.
        assert run_cell(cell, scale) != run_cell(cells[0], scale)


class TestCacheSharing:
    def test_parallel_workers_populate_shared_cache(self, tmp_path):
        cells, scale = smoke_cells(methods=("RAMSIS",), loads=(20.0, 50.0))
        cache = PolicyCache(directory=tmp_path)
        run_sweep(cells, scale, jobs=2, cache=cache)
        assert cache.stats()["artifacts"] >= 2

    def test_serial_rerun_hits_disk_cache(self, tmp_path):
        cells, scale = smoke_cells(methods=("RAMSIS",), loads=(20.0,))
        warm = PolicyCache(directory=tmp_path)
        first = run_sweep(cells, scale, cache=warm)
        clear_caches()
        reader = PolicyCache(directory=tmp_path)
        second = run_sweep(cells, scale, cache=reader)
        assert second == first
        assert reader.hits >= 1
        assert reader.misses == 0

    def test_cache_accepts_directory_path(self, tmp_path):
        cells, scale = smoke_cells(methods=("RAMSIS",), loads=(20.0,))
        baseline = run_sweep(cells, scale)
        clear_caches()
        cached = run_sweep(cells, scale, cache=tmp_path)
        assert cached == baseline
        assert PolicyCache(directory=tmp_path).stats()["artifacts"] >= 1


class TestObservability:
    def test_serial_sweep_emits_sweep_track(self):
        cells, scale = smoke_cells(methods=("JF",), loads=(20.0,))
        tracer = RecordingTracer()
        run_sweep(cells, scale, tracer=tracer)
        tracks = {s.track for s in tracer.spans}
        assert "sweep" in tracks

    def test_parallel_sweep_emits_submit_and_collect(self, tmp_path):
        cells, scale = smoke_cells(methods=("JF", "MS"), loads=(20.0,))
        tracer = RecordingTracer()
        run_sweep(
            cells,
            scale,
            jobs=2,
            cache=PolicyCache(directory=tmp_path),
            tracer=tracer,
        )
        names = [s.name for s in tracer.spans if s.track == "sweep"]
        assert "sweep_submit" in names
        assert "sweep_collect" in names
        assert sum(n.startswith("cell ") for n in names) == len(cells)

    def test_single_cell_falls_back_to_serial_instrumentation(self, tmp_path):
        """jobs>1 with one cell must not fork a pool or write shards."""
        cells, scale = smoke_cells(methods=("JF",), loads=(20.0,))
        assert len(cells) == 1
        tracer = RecordingTracer()
        run_dir = tmp_path / "run"
        run_sweep(cells, scale, jobs=4, tracer=tracer, run_dir=run_dir)
        names = [s.name for s in tracer.spans if s.track == "sweep"]
        assert "sweep_submit" not in names
        # Cell spans record directly in-process — no shipped worker tracks.
        assert not any(t.startswith("w0/") for t in tracer.tracks())
        assert not run_dir.exists() or not list(run_dir.glob("shard-*"))

    def test_jobs_one_matches_traced_serial(self):
        cells, scale = smoke_cells(methods=("JF",), loads=(20.0, 50.0))
        serial_tracer = RecordingTracer()
        serial = run_sweep(cells, scale, tracer=serial_tracer)
        clear_caches()
        one_tracer = RecordingTracer()
        one = run_sweep(cells, scale, jobs=1, tracer=one_tracer)
        assert one == serial
        assert reconstruct_metrics(one_tracer) == reconstruct_metrics(
            serial_tracer
        )
