"""Exactness contract between the ``loop`` and ``tensor`` solver backends.

The tensorized backend (:class:`repro.core.tensor.TensorizedWorkerMDP`) is
not "numerically close" to the reference loop — it is required to be
*float-identical* on the value-iteration path and byte-identical in every
serialized artifact.  This suite is the contract:

- a golden matrix across transition views, batching modes, and the
  drop-late / semi-MDP / per-query-reward extensions asserts ``==``
  (never ``allclose``) value functions, equal sweep counts, byte-equal
  ``Policy.save`` output, identical chain rows, and identical §5.1
  guarantees;
- policy iteration agrees at the greedy-table level (its evaluation
  sweeps use a fused matrix-vector product, which reassociates sums);
- hypothesis draws random small MDPs and checks the same agreement plus
  the simplex invariants of the policy-induced chain.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.distributions import (
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
)
from repro.core.bank import StackedBankMDP, solve_stacked_bank
from repro.core.config import BatchingMode, TransitionView, WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.core.guarantees import (
    evaluate_policy,
    stationary_distribution,
    stationary_occupancy,
)
from repro.core.mdp import WorkerMDP, build_worker_mdp, resolve_solver
from repro.core.solvers import policy_iteration, value_iteration
from repro.core.tensor import TensorizedWorkerMDP
from repro.errors import ConfigurationError
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet
from tests.conftest import make_tiny_model_set


def _ladder(num_models: int) -> ModelSet:
    return ModelSet(
        [
            ModelProfile(
                name=f"m{i}",
                accuracy=0.6 + 0.3 * i / max(num_models - 1, 1),
                latency=LinearLatencyModel(
                    2.0 + 0.7 * i, 5.0 + 4.0 * i, std_ms=0.0
                ),
                family="eq",
            )
            for i in range(num_models)
        ],
        task="eq",
    )


def _config(**overrides) -> WorkerMDPConfig:
    base = dict(
        model_set=make_tiny_model_set(),
        slo_ms=80.0,
        arrivals=PoissonArrivals(30.0),
        num_workers=2,
        max_batch_size=4,
        max_queue=5,
        fld_resolution=8,
        pareto_prune=False,
    )
    base.update(overrides)
    return WorkerMDPConfig(**base)


class TestBackendDispatch:
    def test_resolve_solver(self):
        assert resolve_solver("auto") == "tensor"
        assert resolve_solver("tensor") == "tensor"
        assert resolve_solver("loop") == "loop"
        # "stacked" is a bank-level routing choice; a single-MDP build
        # resolves to the per-load tensor backend it is bitwise-equal to.
        assert resolve_solver("stacked") == "tensor"

    def test_resolve_solver_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            resolve_solver("gpu")

    def test_build_worker_mdp_dispatch(self):
        config = _config()
        auto = build_worker_mdp(config)
        assert isinstance(auto, TensorizedWorkerMDP)
        assert auto.solver == "tensor"
        loop = build_worker_mdp(config, solver="loop")
        assert isinstance(loop, WorkerMDP)
        assert not isinstance(loop, TensorizedWorkerMDP)
        assert loop.solver == "loop"


GOLDEN_CASES = [
    pytest.param(
        dict(view=view, batching=batching),
        id=f"{view.value}-{batching.value}",
    )
    for view in TransitionView
    for batching in (BatchingMode.MAXIMAL, BatchingMode.VARIABLE)
] + [
    pytest.param(
        dict(batching=BatchingMode.VARIABLE, drop_late=True),
        id="drop-late",
    ),
    pytest.param(
        dict(batching=BatchingMode.VARIABLE, duration_aware_discount=True),
        id="semi-mdp",
    ),
    pytest.param(
        dict(batching=BatchingMode.VARIABLE, reward_per_query=0.3),
        id="per-query-reward",
    ),
    pytest.param(
        dict(
            batching=BatchingMode.VARIABLE,
            drop_late=True,
            duration_aware_discount=True,
            reward_per_query=0.3,
        ),
        id="all-extensions",
    ),
]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("overrides", GOLDEN_CASES)
    def test_backends_agree_exactly(self, overrides, tmp_path):
        config = _config(**overrides)
        loop = build_worker_mdp(config, solver="loop")
        tensor = build_worker_mdp(config, solver="tensor")

        # Value iteration: bitwise-identical trajectories.
        vi_loop = value_iteration(loop, tolerance=1e-7)
        vi_tensor = value_iteration(tensor, tolerance=1e-7)
        assert np.array_equal(vi_loop.values, vi_tensor.values)
        assert vi_loop.iterations == vi_tensor.iterations

        # Serialized policies: byte-identical files.
        policy_loop = loop.extract_policy(vi_loop.values)
        policy_tensor = tensor.extract_policy(vi_tensor.values)
        path_loop = tmp_path / "loop.json"
        path_tensor = tmp_path / "tensor.json"
        policy_loop.save(path_loop)
        policy_tensor.save(path_tensor)
        assert path_loop.read_bytes() == path_tensor.read_bytes()

        # Stationary analysis: identical chains, identical §5.1 numbers.
        dist_loop = stationary_distribution(loop, policy_loop)
        dist_tensor = stationary_distribution(tensor, policy_tensor)
        assert np.array_equal(dist_loop, dist_tensor)
        assert evaluate_policy(loop, policy_loop) == (
            evaluate_policy(tensor, policy_tensor)
        )

        # Policy iteration: identical greedy tables and round counts.
        pi_loop, table_loop = policy_iteration(loop, evaluation_sweeps=60)
        pi_tensor, table_tensor = policy_iteration(tensor, evaluation_sweeps=60)
        assert table_loop == table_tensor
        assert pi_loop.iterations == pi_tensor.iterations

    def test_generate_policy_backend_interchangeable(self, tmp_path):
        config = _config(batching=BatchingMode.VARIABLE)
        result_loop = generate_policy(config, solver="loop")
        result_tensor = generate_policy(config, solver="tensor")
        path_loop = tmp_path / "loop.json"
        path_tensor = tmp_path / "tensor.json"
        result_loop.policy.save(path_loop)
        result_tensor.policy.save(path_tensor)
        assert path_loop.read_bytes() == path_tensor.read_bytes()
        assert result_loop.guarantees == result_tensor.guarantees


class TestChainRows:
    def test_policy_rows_identical_and_stochastic(self):
        config = _config(batching=BatchingMode.VARIABLE)
        loop = build_worker_mdp(config, solver="loop")
        tensor = build_worker_mdp(config, solver="tensor")
        stats = value_iteration(tensor, tolerance=1e-7)
        table = tensor.backup(stats.values, want_greedy=True).greedy
        rows_loop = loop.policy_rows(table)
        rows_tensor = tensor.policy_rows(table)
        assert np.array_equal(rows_loop, rows_tensor)
        assert rows_tensor.min() >= -1e-12
        np.testing.assert_allclose(
            rows_tensor.sum(axis=1), 1.0, atol=1e-8
        )

    def test_policy_rows_operator_matches_dense(self):
        config = _config(batching=BatchingMode.VARIABLE, fld_resolution=12)
        tensor = build_worker_mdp(config, solver="tensor")
        stats = value_iteration(tensor, tolerance=1e-7)
        table = tensor.backup(stats.values, want_greedy=True).greedy
        dense = tensor.policy_rows(table)
        operator = tensor.policy_rows_operator(table)
        probe = np.linspace(-1.0, 1.0, dense.shape[0])
        np.testing.assert_allclose(operator @ probe, dense @ probe, atol=1e-12)

    def test_sparse_operator_stationary_matches_dense(self):
        """The opt-in CSR chain operator agrees with the dense power
        iteration to allclose (sparse matvecs reassociate sums)."""
        pytest.importorskip("scipy")
        config = _config(batching=BatchingMode.VARIABLE, fld_resolution=12)
        tensor = build_worker_mdp(config, solver="tensor")
        stats = value_iteration(tensor, tolerance=1e-7)
        policy = tensor.extract_policy(stats.values)
        dense = stationary_distribution(tensor, policy)
        sparse = stationary_distribution(tensor, policy, operator="sparse")
        np.testing.assert_allclose(sparse, dense, atol=1e-9)
        occ_dense = stationary_occupancy(tensor, policy)
        occ_sparse = stationary_occupancy(tensor, policy, operator="auto")
        assert occ_sparse.probs.keys() == occ_dense.probs.keys()
        for key, p in occ_dense.probs.items():
            assert occ_sparse.probs[key] == pytest.approx(p, abs=1e-9)

    def test_auto_operator_falls_back_on_loop_backend(self):
        config = _config(batching=BatchingMode.VARIABLE)
        loop = build_worker_mdp(config, solver="loop")
        tensor = build_worker_mdp(config, solver="tensor")
        stats = value_iteration(tensor, tolerance=1e-7)
        policy = tensor.extract_policy(stats.values)
        # "auto" on a backend without a CSR operator is the dense path,
        # bitwise: the loop backend exposes no policy_rows_operator.
        dense = stationary_distribution(loop, policy)
        auto = stationary_distribution(loop, policy, operator="auto")
        assert np.array_equal(auto, dense)
        with pytest.raises(ConfigurationError):
            stationary_distribution(loop, policy, operator="sparse")
        with pytest.raises(ConfigurationError):
            stationary_distribution(tensor, policy, operator="csr")


# ----------------------------------------------------------------------
# Stacked bank: one batched solve == per-load tensor solves, bitwise
# ----------------------------------------------------------------------
BANK_LOADS = [18.0, 27.0, 36.0, 45.0]

STACKED_CASES = GOLDEN_CASES + [
    pytest.param(
        dict(arrivals=GammaArrivals(30.0, shape=2.0)),
        id="gamma-arrivals",
    ),
    pytest.param(
        dict(arrivals=DeterministicArrivals(30.0)),
        id="deterministic-arrivals",
    ),
]


class TestStackedBank:
    @pytest.mark.parametrize("overrides", STACKED_CASES)
    def test_stacked_matches_per_load_tensor(self, overrides):
        base = _config(**overrides)
        configs = [base.with_load(q) for q in BANK_LOADS]
        stats = StackedBankMDP(configs).solve(tolerance=1e-7)
        for config, s in zip(configs, stats):
            ref = value_iteration(
                build_worker_mdp(config, solver="tensor"), tolerance=1e-7
            )
            assert np.array_equal(s.values, ref.values)
            assert s.iterations == ref.iterations
            assert s.converged

    def test_solve_stacked_bank_end_to_end(self, tmp_path):
        base = _config(batching=BatchingMode.VARIABLE)
        configs = [base.with_load(q) for q in BANK_LOADS]
        results = solve_stacked_bank(configs)
        for config, result in zip(configs, results):
            ref = generate_policy(config, solver="tensor")
            stacked_path = tmp_path / "stacked.json"
            ref_path = tmp_path / "ref.json"
            result.policy.save(stacked_path)
            ref.policy.save(ref_path)
            assert stacked_path.read_bytes() == ref_path.read_bytes()
            assert result.guarantees == ref.guarantees
            assert result.iterations == ref.iterations

    def test_stacked_stationary_matches_per_load(self):
        base = _config(batching=BatchingMode.VARIABLE)
        configs = [base.with_load(q) for q in BANK_LOADS]
        bank = StackedBankMDP(configs)
        stats = bank.solve(tolerance=1e-7)
        policies = [
            cell.extract_policy(s.values)
            for cell, s in zip(bank.cells, stats)
        ]
        dists = bank.stationary_distributions(policies)
        for cell, policy, dist in zip(bank.cells, policies, dists):
            assert np.array_equal(dist, stationary_distribution(cell, policy))

    def test_stacked_warm_start_reaches_same_fixed_point(self):
        base = _config()
        configs = [base.with_load(q) for q in BANK_LOADS]
        cold = StackedBankMDP(configs).solve(tolerance=1e-7)
        initials = [cold[0].values] + [None] * (len(configs) - 1)
        warm = StackedBankMDP(configs).solve(
            tolerance=1e-7, initials=initials
        )
        assert warm[0].warm_started and not warm[1].warm_started
        for c, w in zip(cold, warm):
            np.testing.assert_allclose(w.values, c.values, atol=1e-6)
        assert warm[0].iterations <= cold[0].iterations

    def test_stacked_rejects_mismatched_cells(self):
        base = _config()
        configs = [base.with_load(q) for q in BANK_LOADS[:2]]
        configs[1] = _config(slo_ms=120.0).with_load(BANK_LOADS[1])
        with pytest.raises(ConfigurationError):
            StackedBankMDP(configs)

    def test_stacked_validates_solve_arguments(self):
        base = _config()
        bank = StackedBankMDP([base.with_load(q) for q in BANK_LOADS[:2]])
        with pytest.raises(ConfigurationError):
            bank.solve(initials=[None])


# ----------------------------------------------------------------------
# Property tests: random small MDPs
# ----------------------------------------------------------------------
views = st.sampled_from(
    [TransitionView.POISSON_SPLIT, TransitionView.ROUND_ROBIN_MARGINAL]
)


class TestRandomEquivalence:
    @given(
        num_models=st.integers(2, 4),
        max_queue=st.integers(2, 5),
        resolution=st.integers(3, 7),
        load=st.floats(5.0, 80.0),
        slo=st.floats(40.0, 160.0),
        view=views,
        variable=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_value_iteration_bitwise_on_random_mdps(
        self, num_models, max_queue, resolution, load, slo, view, variable
    ):
        config = WorkerMDPConfig(
            model_set=_ladder(num_models),
            slo_ms=slo,
            arrivals=PoissonArrivals(load),
            num_workers=1,
            max_batch_size=max_queue,
            max_queue=max_queue,
            fld_resolution=resolution,
            view=view,
            batching=(
                BatchingMode.VARIABLE if variable else BatchingMode.MAXIMAL
            ),
            pareto_prune=False,
        )
        loop = build_worker_mdp(config, solver="loop")
        tensor = build_worker_mdp(config, solver="tensor")
        vi_loop = value_iteration(loop, tolerance=1e-6)
        vi_tensor = value_iteration(tensor, tolerance=1e-6)
        assert np.array_equal(vi_loop.values, vi_tensor.values)
        assert vi_loop.iterations == vi_tensor.iterations

    @given(
        num_models=st.integers(2, 3),
        max_queue=st.integers(2, 4),
        resolution=st.integers(3, 6),
        load=st.floats(5.0, 60.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_occupancy_simplex_and_agreement(
        self, num_models, max_queue, resolution, load
    ):
        config = WorkerMDPConfig(
            model_set=_ladder(num_models),
            slo_ms=90.0,
            arrivals=PoissonArrivals(load),
            num_workers=1,
            max_batch_size=max_queue,
            max_queue=max_queue,
            fld_resolution=resolution,
            batching=BatchingMode.VARIABLE,
            pareto_prune=False,
        )
        loop = build_worker_mdp(config, solver="loop")
        tensor = build_worker_mdp(config, solver="tensor")
        stats = value_iteration(tensor, tolerance=1e-6)
        policy = tensor.extract_policy(stats.values)
        occ_loop = stationary_occupancy(loop, policy)
        occ_tensor = stationary_occupancy(tensor, policy)
        assert occ_loop == occ_tensor
        total = (
            occ_tensor.empty_probability
            + occ_tensor.full_probability
            + sum(occ_tensor.probs.values())
        )
        assert total == pytest.approx(1.0, abs=1e-7)
        assert occ_tensor.empty_probability >= 0.0
        assert occ_tensor.full_probability >= 0.0
        assert all(p >= -1e-12 for p in occ_tensor.probs.values())

    @given(
        num_models=st.integers(2, 3),
        max_queue=st.integers(2, 4),
        resolution=st.integers(3, 6),
        base_load=st.floats(5.0, 40.0),
        step=st.floats(2.0, 15.0),
        cells=st.integers(2, 4),
        view=views,
        variable=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_stacked_bitwise_on_random_load_grids(
        self,
        num_models,
        max_queue,
        resolution,
        base_load,
        step,
        cells,
        view,
        variable,
    ):
        """Random load grids x views x batching: the stacked solve must be
        bitwise-equal to independent per-load tensor solves, and frozen-load
        masking must preserve every load's independent sweep count."""
        loads = [base_load + i * step for i in range(cells)]
        base = WorkerMDPConfig(
            model_set=_ladder(num_models),
            slo_ms=90.0,
            arrivals=PoissonArrivals(max(loads)),
            num_workers=1,
            max_batch_size=max_queue,
            max_queue=max_queue,
            fld_resolution=resolution,
            view=view,
            batching=(
                BatchingMode.VARIABLE if variable else BatchingMode.MAXIMAL
            ),
            pareto_prune=False,
        )
        configs = [base.with_load(q) for q in loads]
        stats = StackedBankMDP(configs).solve(tolerance=1e-6)
        for config, s in zip(configs, stats):
            ref = value_iteration(
                build_worker_mdp(config, solver="tensor"), tolerance=1e-6
            )
            assert np.array_equal(s.values, ref.values)
            assert s.iterations == ref.iterations
