"""Tests for model-set serialization and measured-profile fitting."""

import pytest

from repro.errors import ProfileError
from repro.profiles.io import fit_linear_model, load_model_set, save_model_set
from repro.profiles.latency import LatencyProfile
from repro.profiles.profiler import SimulatedHardware, profile_model_set
from repro.profiles.zoo import build_image_model_set


class TestModelSetRoundtrip:
    def test_roundtrip_preserves_everything(self, tiny_models, tmp_path):
        path = tmp_path / "models.json"
        save_model_set(tiny_models, path)
        loaded = load_model_set(path)
        assert loaded.task == tiny_models.task
        assert loaded.names == tiny_models.names
        for name in tiny_models.names:
            a, b = tiny_models.get(name), loaded.get(name)
            assert a.accuracy == b.accuracy
            assert a.latency.overhead_ms == b.latency.overhead_ms
            assert a.latency.per_item_ms == b.latency.per_item_ms
            assert a.family == b.family

    def test_zoo_roundtrip(self, tmp_path):
        zoo = build_image_model_set()
        path = tmp_path / "zoo.json"
        save_model_set(zoo, path)
        loaded = load_model_set(path)
        assert len(loaded) == 26
        assert len(loaded.pareto_front()) == 9

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"version\": 1, \"models\": [{}]}")
        with pytest.raises(ProfileError):
            load_model_set(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text("{\"version\": 99, \"models\": []}")
        with pytest.raises(ProfileError):
            load_model_set(path)


class TestFitLinearModel:
    def test_recovers_parametric_ground_truth(self, image_models):
        """Profile a model on simulated hardware, fit, compare."""
        model = image_models.get("efficientnet_b2")
        subset = image_models.subset([model.name])
        profiles = profile_model_set(
            subset, max_batch_size=8, hardware=SimulatedHardware(seed=11), runs=300
        )
        fitted = fit_linear_model(profiles[model.name], std_ms=10.0)
        assert fitted.per_item_ms == pytest.approx(
            model.latency.per_item_ms, rel=0.05
        )
        for b in (1, 4, 8):
            assert fitted.p95_ms(b) == pytest.approx(model.latency_ms(b), rel=0.08)

    def test_exact_on_noiseless_table(self):
        table = LatencyProfile(
            p95_ms_by_batch={b: 5.0 + 12.0 * b for b in range(1, 9)}
        )
        fitted = fit_linear_model(table, std_ms=0.0)
        assert fitted.per_item_ms == pytest.approx(12.0)
        assert fitted.overhead_ms == pytest.approx(5.0)

    def test_single_point_profile(self):
        table = LatencyProfile(p95_ms_by_batch={1: 20.0})
        fitted = fit_linear_model(table, std_ms=0.0)
        assert fitted.p95_ms(1) == pytest.approx(20.0)

    def test_overhead_clamped_non_negative(self):
        # Steep slope through low batch-1 point would fit negative overhead.
        table = LatencyProfile(p95_ms_by_batch={1: 1.0, 2: 40.0, 3: 80.0})
        fitted = fit_linear_model(table, std_ms=0.0)
        assert fitted.overhead_ms >= 0.0
