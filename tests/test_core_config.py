"""Tests for WorkerMDPConfig."""

import pytest

from repro.arrivals.distributions import GammaArrivals, PoissonArrivals
from repro.core.config import (
    BatchingMode,
    Discretization,
    TransitionView,
    WorkerMDPConfig,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_rejects_bad_slo(self, tiny_models):
        with pytest.raises(ConfigurationError):
            WorkerMDPConfig(
                model_set=tiny_models, slo_ms=0.0, arrivals=PoissonArrivals(10.0)
            )

    def test_rejects_bad_workers(self, tiny_models):
        with pytest.raises(ConfigurationError):
            WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=PoissonArrivals(10.0),
                num_workers=0,
            )

    def test_rejects_bad_discount(self, tiny_models):
        for discount in (0.0, 1.0, 1.5):
            with pytest.raises(ConfigurationError):
                WorkerMDPConfig(
                    model_set=tiny_models,
                    slo_ms=100.0,
                    arrivals=PoissonArrivals(10.0),
                    discount=discount,
                )

    def test_rejects_bad_queue_and_batch(self, tiny_models):
        with pytest.raises(ConfigurationError):
            WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=PoissonArrivals(10.0),
                max_queue=0,
            )
        with pytest.raises(ConfigurationError):
            WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=PoissonArrivals(10.0),
                max_batch_size=0,
            )


class TestDerivedQuantities:
    def test_load_property(self, tiny_config):
        assert tiny_config.load_qps == 25.0

    def test_effective_models_pruning(self, tiny_models):
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(10.0),
            pareto_prune=True,
        )
        assert len(config.effective_models()) == 3  # all on front already
        config2 = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(10.0),
            pareto_prune=False,
        )
        assert len(config2.effective_models()) == 3

    def test_feasible_max_batch(self, tiny_config):
        # fast: l(b) = 2 + 8b <= 100 -> b <= 12, capped at 8.
        assert tiny_config.feasible_max_batch() == 8

    def test_default_max_queue_is_bw_plus_3(self, tiny_config):
        assert tiny_config.effective_max_queue() == 11

    def test_explicit_max_queue_wins(self, tiny_models):
        config = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(10.0),
            max_queue=5,
        )
        assert config.effective_max_queue() == 5

    def test_build_grid_dispatch(self, tiny_models):
        fld = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(10.0),
            discretization=Discretization.FIXED_LENGTH,
            fld_resolution=10,
        )
        assert len(fld.build_grid()) == 11
        md = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(10.0),
            discretization=Discretization.MODEL_BASED,
        )
        grid = md.build_grid()
        assert grid.values[0] == 0.0 and grid.values[-1] == 100.0

    def test_with_load(self, tiny_config):
        changed = tiny_config.with_load(99.0)
        assert changed.load_qps == 99.0
        assert changed.slo_ms == tiny_config.slo_ms
        assert tiny_config.load_qps == 25.0  # original untouched

    def test_per_worker_arrivals_by_view(self, tiny_models):
        base = dict(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(40.0),
            num_workers=4,
        )
        marginal = WorkerMDPConfig(
            view=TransitionView.ROUND_ROBIN_MARGINAL, **base
        ).per_worker_arrivals()
        assert isinstance(marginal, GammaArrivals)
        assert marginal.shape == 4.0
        split = WorkerMDPConfig(
            view=TransitionView.POISSON_SPLIT, **base
        ).per_worker_arrivals()
        assert isinstance(split, PoissonArrivals)
        assert split.load_qps == pytest.approx(10.0)

    def test_default_constructor(self, tiny_models):
        config = WorkerMDPConfig.default_poisson(
            tiny_models, slo_ms=100.0, load_qps=20.0, num_workers=2
        )
        assert isinstance(config.arrivals, PoissonArrivals)
        assert config.num_workers == 2
        assert config.batching is BatchingMode.MAXIMAL
