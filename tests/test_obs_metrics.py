"""Tests for the metrics registry (repro.obs.metrics)."""

import math

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("queries")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("queries").inc(-1.0)


class TestGauge:
    def test_nan_before_first_set(self):
        assert math.isnan(Gauge("load").value)

    def test_last_write_wins(self):
        g = Gauge("load")
        g.set(10.0)
        g.set(20.0)
        assert g.value == 20.0

    def test_series_only_with_timestamps(self):
        g = Gauge("load")
        g.set(10.0)  # no t_ms: not in series
        g.set(20.0, t_ms=5.0)
        g.set(30.0, t_ms=6.0)
        assert g.series == ((5.0, 20.0), (6.0, 30.0))

    def test_series_bounded(self):
        g = Gauge("load", max_samples=3)
        for i in range(10):
            g.set(float(i), t_ms=float(i))
        assert len(g.series) == 3
        assert g.value == 9.0  # last value still tracked past the cap


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 555.0
        assert h.mean == 185.0

    def test_empty_behaviour(self):
        h = Histogram("lat", buckets=(10.0,))
        assert h.mean == 0.0
        assert math.isnan(h.quantile(0.5))

    def test_cumulative_buckets(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        for v in (1.0, 10.0, 11.0, 1000.0):
            h.observe(v)
        cumulative = dict(h.cumulative_buckets())
        # le=10 includes the boundary value (Prometheus: value <= bound).
        assert cumulative[10.0] == 2
        assert cumulative[100.0] == 3
        assert cumulative[math.inf] == 4

    def test_quantiles_exact_below_capacity(self):
        """Below the reservoir capacity, quantiles match numpy's linear
        interpolation exactly."""
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=40.0, size=1000)
        h = Histogram("lat")
        for v in samples:
            h.observe(float(v))
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            expected = float(np.quantile(samples, q))
            assert h.quantile(q) == pytest.approx(expected, rel=1e-12)

    def test_quantiles_approximate_above_capacity(self):
        """Past the capacity the reservoir is a uniform sample: quantiles
        stay close for a well-behaved distribution."""
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.0, 100.0, size=20_000)
        h = Histogram("lat", reservoir_size=4096)
        for v in samples:
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.0, abs=5.0)
        assert h.quantile(0.9) == pytest.approx(90.0, abs=5.0)

    def test_reservoir_deterministic(self):
        def fill():
            h = Histogram("lat", reservoir_size=64)
            for i in range(1000):
                h.observe(float(i % 97))
            return h.quantile(0.5)

        assert fill() == fill()

    def test_quantile_range_checked(self):
        h = Histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_buckets_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_label_sets_are_distinct(self):
        reg = MetricsRegistry()
        c1 = reg.counter("queries", labels={"model": "resnet50"})
        c2 = reg.counter("queries", labels={"model": "alexnet"})
        assert c1 is not c2
        assert len(reg) == 2
        assert len(list(reg.collect("queries"))) == 2

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("q", labels={"x": "1", "y": "2"})
        b = reg.counter("q", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_kind_and_help_introspection(self):
        reg = MetricsRegistry()
        reg.histogram("lat", help="latency in ms")
        assert reg.kind_of("lat") == "histogram"
        assert reg.help_of("lat") == "latency in ms"
        assert reg.kind_of("nope") is None
        assert reg.help_of("nope") == ""

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.gauge("alpha")
        assert reg.names() == ["alpha", "zeta"]

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            DEFAULT_LATENCY_BUCKETS_MS
        )


class TestTailQuantiles:
    """Streaming-histogram tail quantiles vs numpy ground truth.

    Within reservoir capacity the interpolation formula is numpy's
    default (``linear``), so p99/p99.9 must match ``np.percentile``
    exactly.  Beyond capacity the reservoir subsamples; the estimate's
    *rank* error in the full empirical distribution must stay within
    ~3 binomial standard deviations for a 4096-slot reservoir
    (0.006 for p99, 0.003 for p99.9) — checked on a bimodal mixture and
    a heavy-tailed Pareto sample, the shapes tail latencies take.
    """

    def _rank_error(self, data, estimate, q):
        ordered = np.sort(data)
        rank = np.searchsorted(ordered, estimate, side="left") / len(ordered)
        return abs(rank - q)

    def test_exact_within_capacity_matches_numpy(self):
        rng = np.random.default_rng(42)
        data = rng.lognormal(mean=3.0, sigma=1.0, size=4000)
        h = Histogram("lat")
        for x in data:
            h.observe(float(x))
        for q in (0.5, 0.9, 0.99, 0.999):
            assert h.quantile(q) == pytest.approx(
                np.percentile(data, q * 100.0), rel=1e-12
            )

    def test_bimodal_tail_beyond_capacity(self):
        rng = np.random.default_rng(7)
        fast = rng.normal(20.0, 2.0, size=45_000)
        slow = rng.normal(400.0, 30.0, size=5_000)
        data = np.abs(np.concatenate([fast, slow]))
        rng.shuffle(data)
        h = Histogram("lat")
        for x in data:
            h.observe(float(x))
        assert h.count == 50_000
        assert self._rank_error(data, h.quantile(0.99), 0.99) < 0.006
        assert self._rank_error(data, h.quantile(0.999), 0.999) < 0.003
        # The bimodal structure itself must be visible: p99 sits in the
        # slow mode, far from the fast mode's mass.
        assert h.quantile(0.99) > 300.0

    def test_heavy_tail_beyond_capacity(self):
        rng = np.random.default_rng(19)
        # Pareto (alpha=1.5): infinite variance, the adversarial case
        # for any subsampled quantile sketch.
        data = 10.0 * (1.0 + rng.pareto(1.5, size=50_000))
        h = Histogram("lat")
        for x in data:
            h.observe(float(x))
        assert self._rank_error(data, h.quantile(0.99), 0.99) < 0.006
        assert self._rank_error(data, h.quantile(0.999), 0.999) < 0.003

    def test_attribution_exemplar_threshold_uses_histogram(self):
        # The attribution engine's rolling exemplar threshold is this
        # histogram's quantile: deterministic for a fixed feed order.
        from repro.obs.attribution import LatencyAttributor

        a = LatencyAttributor(exemplar_warmup=100, exemplar_capacity=8)
        b = LatencyAttributor(exemplar_warmup=100, exemplar_capacity=8)
        rng = np.random.default_rng(3)
        latencies = rng.uniform(1.0, 100.0, size=500)
        for attributor in (a, b):
            for i, lat in enumerate(latencies):
                attributor.observe_completion(i, 0, "m", float(lat), True)
        assert (
            a.to_json_dict()["exemplars"] == b.to_json_dict()["exemplars"]
        )
