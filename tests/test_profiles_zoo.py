"""Tests for the calibrated model zoo — every structural fact the paper
reports about Figs. 3/9 and §7 must hold."""

import math

import pytest

from repro.errors import ProfileError
from repro.profiles.zoo import (
    IMAGE_SLOS_MS,
    TEXT_SLOS_MS,
    build_image_model_set,
    build_synthetic_model_set,
    build_text_model_set,
    build_three_model_image_set,
)


class TestImageZoo:
    def test_has_26_models(self, image_models):
        assert len(image_models) == 26

    def test_family_census_matches_paper(self, image_models):
        """11 EfficientNets, 5 ResNets, 2 ResNeXts, GoogleNet, 2 MobileNets,
        Inception, 4 ShuffleNets (§7)."""
        census = {}
        for m in image_models:
            census[m.family] = census.get(m.family, 0) + 1
        assert census == {
            "efficientnet": 11,
            "resnet": 5,
            "resnext": 2,
            "googlenet": 1,
            "mobilenet": 2,
            "inception": 1,
            "shufflenet": 4,
        }

    def test_pareto_front_has_9_models(self, image_models):
        assert len(image_models.pareto_front()) == 9

    def test_appendix_e_models_on_front(self, image_models):
        front = image_models.pareto_front().names
        for name in ("shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s"):
            assert name in front

    def test_slo_grid_rule(self, image_models):
        """Middle SLO = slowest model's p95 rounded up to 100 ms; low = half;
        high = 1.5x slowest rounded up (§7)."""
        slowest = image_models.slowest().latency_ms(1)
        middle = math.ceil(slowest / 100.0) * 100.0
        assert middle == 300.0
        assert math.ceil(1.5 * slowest / 100.0) * 100.0 == 500.0
        assert IMAGE_SLOS_MS == (150.0, 300.0, 500.0)

    def test_max_batch_is_29_at_largest_slo(self, image_models):
        """The paper observed B_w = 29 for the largest evaluated SLO."""
        assert image_models.max_batch_size(500.0, cap=64) == 29

    def test_fastest_model(self, image_models):
        assert image_models.fastest().name == "shufflenet_v2_x0_5"

    def test_accuracies_in_range(self, image_models):
        for m in image_models:
            assert 0.60 <= m.accuracy <= 0.86


class TestTextZoo:
    def test_has_5_models_all_on_front(self, text_models):
        assert len(text_models) == 5
        assert len(text_models.pareto_front()) == 5

    def test_slo_grid_rule(self, text_models):
        slowest = text_models.slowest().latency_ms(1)
        assert math.ceil(slowest / 100.0) * 100.0 == 200.0
        assert TEXT_SLOS_MS == (100.0, 200.0, 300.0)

    def test_bert_ordering(self, text_models):
        """Accuracy and latency both increase tiny -> base."""
        ordered = ["bert_tiny", "bert_mini", "bert_small", "bert_medium", "bert_base"]
        assert list(text_models.names) == ordered
        accs = [text_models.get(n).accuracy for n in ordered]
        lats = [text_models.get(n).latency_ms(1) for n in ordered]
        assert accs == sorted(accs)
        assert lats == sorted(lats)


class TestThreeModelSet:
    def test_contents(self):
        three = build_three_model_image_set()
        assert set(three.names) == {
            "shufflenet_v2_x0_5",
            "efficientnet_b2",
            "efficientnet_v2_s",
        }


class TestSyntheticModelSet:
    def test_exactly_60_models(self):
        synthetic = build_synthetic_model_set(target_count=60)
        assert len(synthetic) == 60

    def test_strict_superset_of_pareto_front(self, image_models):
        synthetic = build_synthetic_model_set(image_models, target_count=60)
        front = set(image_models.pareto_front().names)
        assert front <= set(synthetic.names)

    def test_all_on_interpolated_front(self):
        """Synthetic models interpolate the front, so nothing is dominated."""
        synthetic = build_synthetic_model_set(target_count=60)
        assert len(synthetic.pareto_front()) == 60

    def test_accuracy_increments_dense(self):
        synthetic = build_synthetic_model_set(target_count=60)
        accs = sorted(m.accuracy for m in synthetic)
        gaps = [b - a for a, b in zip(accs, accs[1:])]
        assert max(gaps) <= 0.011  # ~0.5-1% increments

    def test_latencies_within_front_range(self, image_models):
        front = image_models.pareto_front()
        lo = front.fastest().latency_ms(1)
        hi = front.slowest().latency_ms(1)
        synthetic = build_synthetic_model_set(image_models, target_count=60)
        for m in synthetic:
            assert lo - 1e-9 <= m.latency_ms(1) <= hi + 1e-9

    def test_smaller_counts(self):
        assert len(build_synthetic_model_set(target_count=20)) == 20

    def test_count_below_front_rejected(self, image_models):
        with pytest.raises(ProfileError):
            build_synthetic_model_set(image_models, target_count=5)

    def test_zoo_builders_are_pure(self):
        a, b = build_image_model_set(), build_image_model_set()
        assert a.names == b.names
        a2, b2 = build_text_model_set(), build_text_model_set()
        assert a2.names == b2.names
