"""Policy-bank generation: parallel/serial equivalence, caching, warm starts."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cache import PolicyCache
from repro.core.generator import PolicyGenerator, generate_policy
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer

TOL = 1e-6
LOADS = [15.0, 25.0, 35.0, 45.0]


def _policy_bytes(result) -> str:
    return json.dumps(result.policy.to_json_dict(), sort_keys=True)


def _bank_bytes(results) -> str:
    return json.dumps(
        [r.policy.to_json_dict() for r in results], sort_keys=True
    )


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------
def test_parallel_bank_matches_serial(tiny_config):
    serial = PolicyGenerator(tiny_config, tolerance=TOL).generate_many(LOADS)
    parallel = PolicyGenerator(tiny_config, tolerance=TOL).generate_many(
        LOADS, max_workers=2
    )
    assert _bank_bytes(serial) == _bank_bytes(parallel)
    for s, p in zip(serial, parallel):
        assert s.guarantees == p.guarantees
        assert s.iterations == p.iterations


def test_generate_many_preserves_load_order(tiny_config):
    generator = PolicyGenerator(tiny_config, tolerance=TOL)
    # Pre-warm one middle cell so the pending set is a strict subset.
    generator.generate(LOADS[2])
    results = generator.generate_many(LOADS, max_workers=2)
    assert [r.policy.load_qps for r in results] == LOADS


def test_parallel_bank_emits_spans_and_counters(tiny_config):
    registry = MetricsRegistry()
    tracer = RecordingTracer()
    generator = PolicyGenerator(
        tiny_config, tolerance=TOL, tracer=tracer, registry=registry
    )
    generator.generate_many(LOADS, max_workers=2)
    bank_spans = [s.name for s in tracer.spans if s.track == "policy_bank"]
    assert "policy_bank_submit" in bank_spans
    assert "policy_bank_collect" in bank_spans
    assert sum(s.startswith("cell ") for s in bank_spans) == len(LOADS)
    solves = registry.counter(
        "policy_bank_cells_total",
        labels={"source": "solve"},
    )
    assert solves.value == len(LOADS)


# ----------------------------------------------------------------------
# Cache layers
# ----------------------------------------------------------------------
def test_memory_cache_hits_counted(tiny_config):
    registry = MetricsRegistry()
    generator = PolicyGenerator(tiny_config, tolerance=TOL, registry=registry)
    first = generator.generate_many(LOADS)
    second = generator.generate_many(LOADS)
    assert generator.cache_size() == len(LOADS)
    assert _bank_bytes(first) == _bank_bytes(second)
    hits = registry.counter(
        "policy_bank_cells_total", labels={"source": "memory"}
    )
    assert hits.value == len(LOADS)


def test_disk_cache_shared_across_generators(tiny_config, tmp_path):
    cache_a = PolicyCache(directory=tmp_path)
    bank = PolicyGenerator(
        tiny_config, tolerance=TOL, cache=cache_a
    ).generate_many(LOADS)
    assert cache_a.stores == len(LOADS)

    registry = MetricsRegistry()
    cache_b = PolicyCache(directory=tmp_path)
    restored = PolicyGenerator(
        tiny_config, tolerance=TOL, cache=cache_b, registry=registry
    ).generate_many(LOADS)
    assert cache_b.hits == len(LOADS)
    assert all(r.from_cache for r in restored)
    assert _bank_bytes(restored) == _bank_bytes(bank)
    disk_hits = registry.counter(
        "policy_bank_cells_total", labels={"source": "disk"}
    )
    assert disk_hits.value == len(LOADS)


def test_tolerance_partitions_the_cache(tiny_config, tmp_path):
    cache = PolicyCache(directory=tmp_path)
    PolicyGenerator(tiny_config, tolerance=1e-6, cache=cache).generate(25.0)
    fresh = PolicyCache(directory=tmp_path)
    result = PolicyGenerator(tiny_config, tolerance=1e-7, cache=fresh).generate(
        25.0
    )
    assert not result.from_cache
    assert fresh.misses == 1


# ----------------------------------------------------------------------
# Stacked bank backend
# ----------------------------------------------------------------------
def test_stacked_bank_matches_serial(tiny_config):
    serial = PolicyGenerator(
        tiny_config, tolerance=TOL, solver="tensor"
    ).generate_many(LOADS)
    stacked = PolicyGenerator(
        tiny_config, tolerance=TOL, solver="stacked"
    ).generate_many(LOADS)
    assert _bank_bytes(serial) == _bank_bytes(stacked)
    for s, p in zip(serial, stacked):
        assert s.guarantees == p.guarantees
        assert s.iterations == p.iterations


def test_stacked_rejects_process_fanout(tiny_config):
    generator = PolicyGenerator(tiny_config, tolerance=TOL, solver="stacked")
    with pytest.raises(ConfigurationError, match="max_workers"):
        generator.generate_many(LOADS, max_workers=2)


def test_auto_routes_serial_grids_to_stacked(tiny_config):
    tracer = RecordingTracer()
    generator = PolicyGenerator(tiny_config, tolerance=TOL, tracer=tracer)
    generator.generate_many(LOADS)  # 4 cells >= STACKED_AUTO_MIN_CELLS
    spans = [s.name for s in tracer.spans if s.track == "policy_bank"]
    assert "policy_bank_stacked" in spans


def test_auto_keeps_small_grids_serial(tiny_config):
    tracer = RecordingTracer()
    PolicyGenerator(tiny_config, tolerance=TOL, tracer=tracer).generate_many(
        LOADS[:2]
    )
    spans = [s.name for s in tracer.spans if s.track == "policy_bank"]
    assert "policy_bank_stacked" not in spans


def test_explicit_workers_keep_the_pool_under_auto(tiny_config):
    tracer = RecordingTracer()
    PolicyGenerator(tiny_config, tolerance=TOL, tracer=tracer).generate_many(
        LOADS, max_workers=2
    )
    spans = [s.name for s in tracer.spans if s.track == "policy_bank"]
    assert "policy_bank_stacked" not in spans
    assert "policy_bank_submit" in spans


def test_stacked_shares_cache_keys_with_serial(tiny_config, tmp_path):
    cache_a = PolicyCache(directory=tmp_path)
    bank = PolicyGenerator(
        tiny_config, tolerance=TOL, solver="tensor", cache=cache_a
    ).generate_many(LOADS)
    assert cache_a.stores == len(LOADS)

    cache_b = PolicyCache(directory=tmp_path)
    restored = PolicyGenerator(
        tiny_config, tolerance=TOL, solver="stacked", cache=cache_b
    ).generate_many(LOADS)
    assert cache_b.hits == len(LOADS)
    assert all(r.from_cache for r in restored)
    assert _bank_bytes(restored) == _bank_bytes(bank)


def test_stacked_threads_initials(tiny_config):
    seed = PolicyGenerator(tiny_config, tolerance=TOL).generate(20.0)
    cold = PolicyGenerator(
        tiny_config, tolerance=TOL, solver="tensor"
    ).generate_many(LOADS)
    warm = PolicyGenerator(
        tiny_config, tolerance=TOL, solver="stacked"
    ).generate_many(LOADS, initials={q: seed.values for q in LOADS})
    assert _bank_bytes(warm) == _bank_bytes(cold)
    assert all(w.iterations <= c.iterations for w, c in zip(warm, cold))


# ----------------------------------------------------------------------
# Warm starts
# ----------------------------------------------------------------------
def test_warm_start_matches_cold_policy(tiny_config):
    neighbour = generate_policy(tiny_config.with_load(20.0), tolerance=TOL)
    cold = generate_policy(tiny_config.with_load(25.0), tolerance=TOL)
    warm = generate_policy(
        tiny_config.with_load(25.0), tolerance=TOL, initial=neighbour.values
    )
    assert _policy_bytes(warm) == _policy_bytes(cold)
    assert warm.iterations <= cold.iterations


def test_generate_many_threads_initials(tiny_config):
    generator = PolicyGenerator(tiny_config, tolerance=TOL)
    seed = generator.generate(20.0)
    cold = PolicyGenerator(tiny_config, tolerance=TOL).generate(25.0)
    warm = generator.generate_many([25.0], initials={25.0: seed.values})[0]
    assert _policy_bytes(warm) == _policy_bytes(cold)


# ----------------------------------------------------------------------
# Policy serialization (deterministic artifact bytes)
# ----------------------------------------------------------------------
def test_policy_save_bytes_are_stable(tiny_config, tmp_path):
    result = generate_policy(tiny_config, tolerance=TOL)
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    result.policy.save(a)
    result.policy.save(b)
    assert a.read_bytes() == b.read_bytes()
    # Keys are sorted, so a re-serialized round trip is also byte-stable.
    from repro.core.policy import Policy

    loaded = Policy.load(a)
    loaded.save(b)
    assert a.read_bytes() == b.read_bytes()
    assert np.isclose(loaded.metadata.expected_accuracy,
                      result.policy.metadata.expected_accuracy)
