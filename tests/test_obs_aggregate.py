"""Cross-process trace shipping and merge semantics.

The tentpole contract: worker shards written by :class:`ShardTracer`
merge back into one multi-track tracer/registry in serial cell order, so
a traced parallel sweep reconstructs to *exactly* the serial traced
run's numbers, and the merged Chrome trace is Perfetto-loadable with one
process group per worker.
"""

import json

import pytest

from repro.arrivals.traces import LoadTrace
from repro.cache import PolicyCache
from repro.experiments.runner import clear_caches
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import image_task
from repro.obs.aggregate import (
    ShardTracer,
    merge_run_dir,
    write_merged_artifacts,
)
from repro.obs.exporters import chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.reconstruct import reconstruct_from_jsonl, reconstruct_metrics
from repro.obs.trace import RecordingTracer


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def sweep_cells(loads=(20.0, 50.0)):
    scale = ExperimentScale.smoke()
    task = image_task()
    cells = [
        SweepCell(
            method=method,
            task=task,
            slo_ms=task.slos_ms[0],
            num_workers=scale.constant_workers_image,
            trace=LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"agg-{load:g}"
            ),
            seed=23,
            oracle_load=True,
        )
        for load in loads
        for method in ("RAMSIS", "JF")
    ]
    return cells, scale


class TestShardTracer:
    def test_header_and_record_schema(self, tmp_path):
        path = tmp_path / "shard-123.jsonl"
        tracer = ShardTracer(path, pid=123)
        tracer.set_sequence(4)
        with tracer.span("outer", track="t"):
            with tracer.span("inner", track="t"):
                pass
        tracer.instant("tick", "t", 1.0)
        tracer.counter("queue", "t", 2.0, 7.0)
        tracer.close()

        records = [json.loads(line) for line in path.read_text().splitlines()]
        header, rest = records[0], records[1:]
        assert header["type"] == "shard_header"
        assert header["pid"] == 123
        assert header["anchor_unix_ms"] > 0
        # Every record carries the sequence stamp and a monotonic counter.
        assert [r["seq"] for r in rest] == [4] * len(rest)
        assert [r["n"] for r in rest] == list(range(len(rest)))
        inner, outer = rest[0], rest[1]  # inner span closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert rest[2]["type"] == "instant"
        assert rest[3]["type"] == "counter"

    def test_mutable_args_captured_at_exit(self, tmp_path):
        tracer = ShardTracer(tmp_path / "shard-1.jsonl", pid=1)
        outcome = {}
        with tracer.span("cache_get", track="cache", args=outcome):
            outcome["hit"] = True
        tracer.close()
        records = [
            json.loads(line)
            for line in tracer.path.read_text().splitlines()
        ]
        assert records[-1]["args"] == {"hit": True}

    def test_shard_is_reconstruction_input(self, tmp_path, tiny_models):
        """A shard file is itself valid events_jsonl for reconstruction."""
        from tests.test_obs_integration import traced_run
        from tests.test_sim_simulator import AlwaysModelSelector

        metrics, tracer, _ = traced_run(
            tiny_models,
            AlwaysModelSelector("fast"),
            LoadTrace.constant(100.0, 5_000.0),
        )
        shard = ShardTracer(tmp_path / "shard-9.jsonl", pid=9)
        for span in tracer.spans:
            shard.complete(
                span.name,
                span.track,
                span.start_ms,
                span.duration_ms,
                span.category,
                dict(span.args),
            )
        for ev in tracer.events:
            if ev.is_counter:
                shard.counter(ev.name, ev.track, ev.ts_ms, ev.value)
            else:
                shard.instant(ev.name, ev.track, ev.ts_ms, args=dict(ev.args))
        shard.close()
        summary = reconstruct_from_jsonl(shard.path)
        assert summary.total_queries == metrics.total_queries
        assert summary.violation_rate == metrics.violation_rate


class TestMergeRunDir:
    def _write_shards(self, tmp_path):
        """Two shards with interleaved sequence numbers."""
        a = ShardTracer(tmp_path / "shard-100.jsonl", pid=100)
        b = ShardTracer(tmp_path / "shard-200.jsonl", pid=200)
        a.set_sequence(0)
        a.instant("cell_start", "worker", 1.0)
        b.set_sequence(1)
        b.instant("cell_start", "worker", 1.0)
        a.set_sequence(2)
        a.instant("cell_start", "worker", 1.0)
        a.close()
        b.close()
        return a, b

    def test_tracks_renamed_and_ordered_by_sequence(self, tmp_path):
        self._write_shards(tmp_path)
        merged = merge_run_dir(tmp_path)
        assert merged.tracer.tracks() == ["w0/worker", "w1/worker"]
        order = [
            ev.track for ev in merged.tracer.events if ev.name == "cell_start"
        ]
        # seq 0 (w0), seq 1 (w1), seq 2 (w0) — serial cell order.
        assert order == ["w0/worker", "w1/worker", "w0/worker"]
        assert merged.records == 3
        assert [s.pid for s in merged.shards] == [100, 200]
        assert [s.worker_index for s in merged.shards] == [0, 1]

    def test_merges_into_existing_recorder(self, tmp_path):
        self._write_shards(tmp_path)
        parent = RecordingTracer()
        with parent.span("sweep_submit", track="sweep"):
            pass
        merged = merge_run_dir(tmp_path, tracer=parent)
        assert merged.tracer is parent
        assert set(parent.tracks()) == {"sweep", "w0/worker", "w1/worker"}

    def test_offline_timestamps_reanchored_non_negative(self, tmp_path):
        a = ShardTracer(tmp_path / "shard-1.jsonl", pid=1)
        with a.span("solve", track="solver"):
            pass
        a.close()
        parent = RecordingTracer()  # created before merge → earliest anchor
        merged = merge_run_dir(tmp_path, tracer=parent)
        offline = [s for s in merged.tracer.spans if s.name == "solve"]
        assert offline
        assert all(s.start_ms >= 0.0 for s in offline)

    def test_registry_merge_sums_counters_and_labels_gauges(self, tmp_path):
        for pid in (10, 20):
            registry = MetricsRegistry()
            registry.counter("policy_cache_misses_total").inc(2)
            registry.gauge("load_qps").set(float(pid))
            (tmp_path / f"metrics-{pid}.json").write_text(
                json.dumps(registry.to_json_dict())
            )
        merged = merge_run_dir(tmp_path)
        (counter,) = merged.registry.collect("policy_cache_misses_total")
        assert counter.value == 4.0
        gauges = {
            dict(g.labels)["worker"]: g.value
            for g in merged.registry.collect("load_qps")
        }
        assert gauges == {"0": 10.0, "1": 20.0}


class TestParallelSweepEquality:
    def test_traced_parallel_reconstructs_exactly_like_serial(self, tmp_path):
        """The headline acceptance criterion: jobs>1 tracing is lossless."""
        cells, scale = sweep_cells()
        serial_tracer = RecordingTracer()
        serial = run_sweep(cells, scale, tracer=serial_tracer)
        clear_caches()
        parallel_tracer = RecordingTracer()
        registry = MetricsRegistry()
        parallel = run_sweep(
            cells,
            scale,
            jobs=2,
            cache=PolicyCache(directory=tmp_path / "cache"),
            tracer=parallel_tracer,
            registry=registry,
            run_dir=tmp_path / "run",
        )
        assert parallel == serial
        assert reconstruct_metrics(parallel_tracer) == reconstruct_metrics(
            serial_tracer
        )
        # Worker track groups exist alongside the parent's sweep track.
        tracks = parallel_tracer.tracks()
        assert "sweep" in tracks
        assert any(t.startswith("w0/") for t in tracks)

    def test_run_dir_gets_merged_artifacts(self, tmp_path):
        cells, scale = sweep_cells(loads=(20.0,))
        run_dir = tmp_path / "run"
        run_sweep(
            cells,
            scale,
            jobs=2,
            cache=PolicyCache(directory=tmp_path / "cache"),
            tracer=RecordingTracer(),
            run_dir=run_dir,
        )
        for name in ("merged.jsonl", "trace.json", "metrics.prom", "metrics.json"):
            assert (run_dir / name).is_file(), name
        assert list(run_dir.glob("shard-*.jsonl"))
        summary = reconstruct_from_jsonl(run_dir / "merged.jsonl")
        assert summary.total_queries > 0


class TestChromeTraceSplitProcesses:
    def _merged_tracer(self, tmp_path):
        a = ShardTracer(tmp_path / "shard-1.jsonl", pid=1)
        b = ShardTracer(tmp_path / "shard-2.jsonl", pid=2)
        for shard in (a, b):
            shard.complete("serve", "worker-0", 0.0, 5.0)
            shard.instant("arrival", "balancer", 0.5)
        a.close()
        b.close()
        parent = RecordingTracer()
        with parent.span("sweep_submit", track="sweep"):
            pass
        return merge_run_dir(tmp_path, tracer=parent).tracer

    def test_one_process_group_per_worker(self, tmp_path):
        doc = chrome_trace(self._merged_tracer(tmp_path), split_processes=True)
        names = {
            ev["args"]["name"]: ev["pid"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        # Parent group plus one group per worker, distinct pids.
        assert len(names) == 3
        assert len(set(names.values())) == 3
        worker_groups = [n for n in names if n.endswith(("w0", "w1"))]
        assert len(worker_groups) == 2

    def test_events_mapped_to_group_pids_with_valid_timestamps(self, tmp_path):
        doc = chrome_trace(self._merged_tracer(tmp_path), split_processes=True)
        events = [ev for ev in doc["traceEvents"] if ev["ph"] in ("X", "i")]
        assert events
        pids = {ev["pid"] for ev in events}
        assert len(pids) == 3  # parent + two workers
        for ev in events:
            assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_document_is_loadable_json(self, tmp_path):
        merged = merge_run_dir(tmp_path, tracer=self._merged_tracer(tmp_path))
        paths = write_merged_artifacts(merged, tmp_path / "out")
        doc = json.loads(paths["chrome"].read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"]


class TestGenerateManyShipping:
    def test_parallel_generate_many_merges_solver_spans(self, tmp_path, tiny_config):
        from repro.core.generator import PolicyGenerator

        tracer = RecordingTracer()
        run_dir = tmp_path / "bank"
        generator = PolicyGenerator(
            tiny_config, tracer=tracer, run_dir=run_dir
        )
        results = generator.generate_many([20.0, 30.0], max_workers=2)
        assert len(results) == 2
        tracks = tracer.tracks()
        assert any(t.startswith("w") and t.endswith("/generator") for t in tracks)
        # Each parallel batch writes its own subdirectory of artifacts.
        batches = sorted(run_dir.glob("batch-*"))
        assert batches
        assert (batches[0] / "merged.jsonl").is_file()


class TestTruncatedShards:
    """A crashed worker tears its shard mid-line; merging must degrade
    gracefully: every record before the tear survives, the torn line is
    skipped with a warning, nothing raises."""

    def _torn_shard(self, tmp_path):
        from repro.obs.aggregate import ShardTracer

        path = tmp_path / "shard-7.jsonl"
        tracer = ShardTracer(path, pid=7)
        tracer.set_sequence(0)
        for i in range(5):
            tracer.instant(
                "completion",
                "worker-0",
                float(i),
                args={
                    "query": i, "worker": 0, "model": "m",
                    "satisfied": True, "response_ms": 1.0,
                },
            )
        tracer.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "instant", "name": "comp')  # torn mid-write
        return path

    def test_merge_run_dir_skips_torn_line(self, tmp_path, caplog):
        self._torn_shard(tmp_path)
        with caplog.at_level("WARNING", logger="repro.obs.aggregate"):
            merged = merge_run_dir(tmp_path)
        assert any("unparseable" in r.message for r in caplog.records)
        assert len(merged.tracer.events) == 5

    def test_reconstruct_from_jsonl_skips_torn_line(self, tmp_path, caplog):
        path = self._torn_shard(tmp_path)
        with caplog.at_level("WARNING", logger="repro.obs.reconstruct"):
            summary = reconstruct_from_jsonl(path)
        assert any("unparseable" in r.message for r in caplog.records)
        assert summary.total_queries == 5

    def test_attribution_fold_skips_torn_line(self, tmp_path, caplog):
        from repro.obs.attribution import attribution_from_jsonl

        path = self._torn_shard(tmp_path)
        with caplog.at_level("WARNING", logger="repro.obs.attribution"):
            attributor = attribution_from_jsonl(path)
        assert any("unparseable" in r.message for r in caplog.records)
        assert attributor.to_json_dict()["totals"]["queries"] == 5


class TestLiveSnapshots:
    def test_write_live_snapshot_atomic_files(self, tmp_path):
        from repro.obs.aggregate import write_live_snapshot
        from repro.obs.attribution import LatencyAttributor

        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        attributor = LatencyAttributor(slo_ms=100.0)
        attributor.observe_completion(1, 0, "m", 9.0, True)
        paths = write_live_snapshot(
            tmp_path, registry=registry, attributor=attributor, pid=42
        )
        names = sorted(p.name for p in paths)
        assert names == ["attribution-42.json", "metrics-42.json"]
        snap = json.loads((tmp_path / "attribution-42.json").read_text())
        assert snap["totals"]["queries"] == 1
        metrics = json.loads((tmp_path / "metrics-42.json").read_text())
        assert any(
            m["name"] == "queries_total" for m in metrics["metrics"]
        )
        # No temp files left behind.
        assert not list(tmp_path.glob(".*tmp"))

    def test_snapshot_feeds_render_top_frame(self, tmp_path):
        from repro.obs.aggregate import write_live_snapshot
        from repro.obs.attribution import LatencyAttributor
        from repro.obs.report import render_top_frame

        attributor = LatencyAttributor(slo_ms=100.0)
        attributor.observe_completion(1, 0, "m", 9.0, True)
        write_live_snapshot(tmp_path, attributor=attributor, pid=7)
        frame = render_top_frame(tmp_path)
        assert "attribution-7.json" in frame
        assert "m @ worker 0" in frame
