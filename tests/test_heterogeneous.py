"""Tests for heterogeneous clusters: per-worker speeds and per-worker
policies (§7: "Worker homogeneity is not a fundamental requirement for
RAMSIS since policies are generated per worker")."""

import numpy as np
import pytest

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.errors import ProfileError, SimulationError
from repro.selectors import GreedyDeadlineSelector, RamsisSelector
from repro.sim import OracleLoadMonitor, Simulation, SimulationConfig


class TestLatencyScaling:
    def test_scales_all_parameters(self, tiny_models):
        slow = tiny_models.with_latency_scale(2.0)
        for name in tiny_models.names:
            assert slow.get(name).latency.per_item_ms == pytest.approx(
                2.0 * tiny_models.get(name).latency.per_item_ms
            )
            assert slow.get(name).latency.overhead_ms == pytest.approx(
                2.0 * tiny_models.get(name).latency.overhead_ms
            )
            assert slow.get(name).accuracy == tiny_models.get(name).accuracy

    def test_pareto_front_preserved(self, image_models):
        scaled = image_models.with_latency_scale(1.7)
        assert scaled.pareto_front().names == image_models.pareto_front().names

    def test_invalid_factor_rejected(self, tiny_models):
        with pytest.raises(ProfileError):
            tiny_models.with_latency_scale(0.0)


class TestHeterogeneousSimulation:
    def test_speed_factors_validated(self, tiny_models):
        with pytest.raises(SimulationError):
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                num_workers=2,
                worker_speed_factors=(1.0,),
            )
        with pytest.raises(SimulationError):
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                num_workers=2,
                worker_speed_factors=(1.0, 0.0),
            )

    def test_slower_cluster_more_violations(self, tiny_models):
        trace = LoadTrace.constant(120.0, 20_000.0)

        def violations(factors):
            sim = Simulation(
                SimulationConfig(
                    model_set=tiny_models,
                    slo_ms=100.0,
                    num_workers=2,
                    worker_speed_factors=factors,
                    seed=5,
                )
            )
            return sim.run(GreedyDeadlineSelector(), trace).violation_rate

        assert violations((1.0, 1.0)) <= violations((2.5, 2.5)) + 1e-9

    def test_selector_count_validated(self, tiny_models):
        sim = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=3)
        )
        with pytest.raises(SimulationError):
            sim.run(
                [GreedyDeadlineSelector()],
                LoadTrace.constant(10.0, 1_000.0),
                arrival_times=np.array([0.0]),
            )

    def test_per_worker_selectors_serve(self, tiny_models):
        sim = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=2)
        )
        selectors = [GreedyDeadlineSelector(), GreedyDeadlineSelector()]
        metrics = sim.run(
            selectors,
            LoadTrace.constant(50.0, 10_000.0),
            pattern=PoissonArrivals(50.0),
        )
        assert metrics.total_queries > 0


class TestPerWorkerPolicies:
    def test_per_type_policies_beat_mismatched_policy(self, tiny_models):
        """On a cluster with one 1x and one 2.5x-slower worker, generating
        each worker's policy from its *own* profile must not lose to
        deploying the fast worker's policy everywhere."""
        slo, load, workers = 100.0, 50.0, 2
        factors = (1.0, 2.5)
        trace = LoadTrace.constant(load, 40_000.0)

        def policy_for(scale_factor):
            config = WorkerMDPConfig(
                model_set=tiny_models.with_latency_scale(scale_factor),
                slo_ms=slo,
                arrivals=PoissonArrivals(load),
                num_workers=workers,
                max_batch_size=8,
                fld_resolution=10,
            )
            return generate_policy(config, with_guarantees=False).policy

        def run(selectors):
            sim = Simulation(
                SimulationConfig(
                    model_set=tiny_models,
                    slo_ms=slo,
                    num_workers=workers,
                    max_batch_size=8,
                    worker_speed_factors=factors,
                    monitor=OracleLoadMonitor(trace),
                    seed=6,
                )
            )
            return sim.run(selectors, trace, pattern=PoissonArrivals(load))

        fast_policy = policy_for(1.0)
        matched = run(
            [RamsisSelector(policy_for(f)) for f in factors]
        )
        mismatched = run(
            [RamsisSelector(fast_policy), RamsisSelector(fast_policy)]
        )
        # The fast policy running on the slow worker plans with optimistic
        # latencies, so matching policies to worker types must not violate
        # more.
        assert matched.violation_rate <= mismatched.violation_rate + 0.01
