"""Tests for the Fig. 2 motivation driver and the recording selector."""

import numpy as np
import pytest

from repro.arrivals.traces import LoadTrace
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.runner import clear_caches
from repro.experiments.scale import ExperimentScale
from repro.selectors import GreedyDeadlineSelector, RecordingSelector
from repro.sim import Simulation, SimulationConfig


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()


class TestRecordingSelector:
    def test_records_every_decision(self, tiny_models):
        inner = GreedyDeadlineSelector()
        recorder = RecordingSelector(inner)
        sim = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=1)
        )
        metrics = sim.run(
            recorder,
            LoadTrace.constant(1.0, 1_000.0),
            arrival_times=np.array([0.0, 5.0, 200.0]),
        )
        assert len(recorder.decisions) == metrics.decisions
        served = sum(d.action.batch_size for d in recorder.decisions)
        assert served == metrics.total_queries

    def test_records_queue_state(self, tiny_models):
        recorder = RecordingSelector(GreedyDeadlineSelector())
        sim = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=1)
        )
        sim.run(
            recorder,
            LoadTrace.constant(1.0, 1_000.0),
            arrival_times=np.array([0.0]),
        )
        record = recorder.decisions[0]
        assert record.queue_length == 1
        assert record.earliest_slack_ms == pytest.approx(100.0)
        assert record.now_ms == pytest.approx(0.0)

    def test_rebinding_clears_log(self, tiny_models):
        recorder = RecordingSelector(GreedyDeadlineSelector())
        sim = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=1)
        )
        trace = LoadTrace.constant(1.0, 1_000.0)
        sim.run(recorder, trace, arrival_times=np.array([0.0]))
        first = len(recorder.decisions)
        sim.run(recorder, trace, arrival_times=np.array([0.0]))
        assert len(recorder.decisions) == first  # cleared and re-filled

    def test_models_used_order(self, tiny_models):
        recorder = RecordingSelector(GreedyDeadlineSelector())
        sim = Simulation(
            SimulationConfig(model_set=tiny_models, slo_ms=100.0, num_workers=1)
        )
        sim.run(
            recorder,
            LoadTrace.constant(1.0, 2_000.0),
            arrival_times=np.array([0.0, 1.0, 1.5, 400.0]),
        )
        used = recorder.models_used()
        assert used
        assert len(used) == len(set(used))


class TestFig2:
    def test_fig2_mechanism(self):
        result = run_fig2(
            scale=ExperimentScale.smoke(), duration_ms=12_000.0
        )
        # The load-granular baseline pins one model.
        assert len(result.baseline_models_used) == 1
        # RAMSIS mixes models and upgrades during lulls.
        assert len(result.ramsis_models_used) >= 2
        assert result.lulls
        assert result.ramsis_upgrades()
        # Same arrival stream for both schemes.
        assert (
            result.ramsis_metrics.total_queries
            == result.baseline_metrics.total_queries
        )

    def test_fig2_render(self):
        result = run_fig2(scale=ExperimentScale.smoke(), duration_ms=8_000.0)
        text = render_fig2(result)
        assert "Figure 2" in text
        assert "RAMSIS" in text
        assert "load-granular" in text
