"""Run reports and bench-history regression tracking."""

import json

import pytest

from repro.cli import main
from repro.obs.aggregate import ShardTracer, merge_run_dir, write_merged_artifacts
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    Regression,
    append_bench_history,
    check_bench_history,
    metric_direction,
    render_run_report,
    render_top_frame,
    write_run_report,
)
from repro.obs.report import _flatten


def populate_run_dir(run_dir):
    """One worker shard plus merged artifacts plus an audit report."""
    run_dir.mkdir(parents=True, exist_ok=True)
    shard = ShardTracer(run_dir / "shard-11.jsonl", pid=11)
    shard.instant("arrival", "balancer", 0.5)
    shard.complete("serve", "worker-0", 1.0, 4.0, args={"batch": 2})
    shard.instant(
        "completion",
        "worker-0",
        5.0,
        args={"satisfied": True, "accuracy": 0.75},
    )
    shard.instant(
        "completion",
        "worker-0",
        9.0,
        args={"satisfied": False, "accuracy": 0.75},
    )
    shard.counter("queue_depth", "worker-0", 2.0, 3.0)
    shard.close()

    registry = MetricsRegistry()
    registry.counter("queries_total", "Completed queries").inc(2)
    (run_dir / "metrics-11.json").write_text(json.dumps(registry.to_json_dict()))

    merged = merge_run_dir(run_dir)
    write_merged_artifacts(merged, run_dir)
    (run_dir / "audit.json").write_text(
        json.dumps({"ok": True, "windows": 4, "breaches": 0})
    )
    return run_dir


class TestRunReport:
    def test_text_report_sections(self, tmp_path):
        report = render_run_report(populate_run_dir(tmp_path / "run"))
        assert "ramsis run report" in report
        assert "worker shards" in report
        assert "shard-11.jsonl" in report
        assert "reconstructed from merged.jsonl" in report
        assert "completed queries" in report
        # 1 of 2 completions satisfied.
        assert "violation rate" in report and "50.000%" in report
        assert "merged metrics" in report
        assert "queries_total" in report
        assert "guarantee audit" in report
        assert "merged artifacts" in report

    def test_html_report_escapes_and_tabulates(self, tmp_path):
        report = render_run_report(populate_run_dir(tmp_path / "run"), fmt="html")
        assert report.startswith("<!doctype html>")
        assert "<table>" in report
        assert "<h2>worker shards</h2>" in report

    def test_empty_dir_reports_no_artifacts(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert "(no observability artifacts found)" in render_run_report(empty)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_run_report(tmp_path / "nope")

    def test_unknown_format_raises(self, tmp_path):
        populate_run_dir(tmp_path / "run")
        with pytest.raises(ValueError):
            render_run_report(tmp_path / "run", fmt="pdf")

    def test_batch_subdir_merged_jsonl_found(self, tmp_path):
        run_dir = tmp_path / "bank"
        populate_run_dir(run_dir / "batch-000")
        report = render_run_report(run_dir)
        assert "batch-000/merged.jsonl" in report.replace("\\", "/")

    def test_write_run_report_default_and_explicit_path(self, tmp_path):
        run_dir = populate_run_dir(tmp_path / "run")
        default = write_run_report(run_dir)
        assert default == run_dir / "report.txt"
        assert "worker shards" in default.read_text()
        explicit = write_run_report(
            run_dir, out_path=tmp_path / "deep" / "r.html", fmt="html"
        )
        assert explicit.is_file()
        assert explicit.read_text().startswith("<!doctype html>")

    def test_cli_report_run_dir(self, tmp_path, capsys):
        run_dir = populate_run_dir(tmp_path / "run")
        assert main(["report", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "worker shards" in out
        assert (run_dir / "report.txt").is_file()

    def test_cli_report_missing_run_dir_fails(self, tmp_path, capsys):
        assert main(["report", "--run-dir", str(tmp_path / "gone")]) == 1
        assert "not found" in capsys.readouterr().out


def populate_attributed_run_dir(run_dir):
    """A shard carrying the lifecycle schema the attribution engine folds."""
    run_dir.mkdir(parents=True, exist_ok=True)
    shard = ShardTracer(run_dir / "shard-3.jsonl", pid=3)
    for q, (response, ok) in enumerate(
        [(40.0, True), (90.0, True), (130.0, False)]
    ):
        t0 = q * 200.0
        shard.instant("arrival", "balancer", t0)
        shard.complete(
            "serve",
            "worker-0",
            t0 + 5.0,
            response - 5.0,
            args={"worker": 0, "model": "m", "batch": 1},
        )
        shard.instant(
            "service_start",
            "worker-0",
            t0 + 5.0,
            args={"query": q, "model": "m", "batch": 1, "wait_ms": 5.0},
        )
        shard.instant(
            "completion",
            "worker-0",
            t0 + response,
            args={
                "query": q,
                "worker": 0,
                "model": "m",
                "satisfied": ok,
                "response_ms": response,
            },
        )
    shard.close()
    write_merged_artifacts(merge_run_dir(run_dir), run_dir)
    return run_dir


class TestAttributionReport:
    def test_merged_artifacts_include_attribution(self, tmp_path):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        snap = json.loads((run_dir / "attribution.json").read_text())
        assert snap["totals"]["queries"] == 3

    def test_legacy_schema_run_has_no_attribution_artifact(self, tmp_path):
        run_dir = populate_run_dir(tmp_path / "run")
        assert not (run_dir / "attribution.json").exists()

    def test_report_attribution_and_hotspot_sections(self, tmp_path):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        report = render_run_report(run_dir)
        assert "latency attribution" in report
        assert "m @ worker 0" in report
        assert "3 queries" in report
        assert "phase hotspots (self-time)" in report
        assert "serve" in report

    def test_report_without_attribution_omits_section(self, tmp_path):
        report = render_run_report(populate_run_dir(tmp_path / "run"))
        assert "latency attribution" not in report
        # The legacy fixture still records serve spans → hotspots appear.
        assert "phase hotspots (self-time)" in report

    def test_write_run_report_emits_profile_folded(self, tmp_path):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        write_run_report(run_dir)
        folded = (run_dir / "profile.folded").read_text()
        assert "worker-0;serve" in folded

    def test_render_top_frame_reads_merged_artifacts(self, tmp_path):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        frame = render_top_frame(run_dir)
        assert frame.startswith("ramsis top")
        assert "latency attribution [attribution.json]" in frame
        assert "m @ worker 0" in frame

    def test_cli_explain_text_and_json(self, tmp_path, capsys):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        assert main(["explain", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Latency attribution" in out
        assert "SLO burn rate" in out
        assert main(["explain", "--run-dir", str(run_dir), "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["totals"]["queries"] == 3

    def test_cli_explain_refolds_event_log(self, tmp_path, capsys):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        (run_dir / "attribution.json").unlink()
        assert (
            main(["explain", "--run-dir", str(run_dir), "--slo", "100"]) == 0
        )
        out = capsys.readouterr().out
        assert "worker" in out

    def test_cli_explain_out_writes_file(self, tmp_path, capsys):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        out_path = tmp_path / "deep" / "explain.txt"
        args = ["explain", "--run-dir", str(run_dir), "--out", str(out_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert "Latency attribution" in out_path.read_text()

    def test_cli_explain_missing_source_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["explain", "--run-dir", str(empty)]) == 1
        assert "no attribution source" in capsys.readouterr().out

    def test_cli_top_once(self, tmp_path, capsys):
        run_dir = populate_attributed_run_dir(tmp_path / "run")
        assert main(["top", "--run-dir", str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ramsis top")
        assert "m @ worker 0" in out

    def test_cli_top_missing_dir_fails(self, tmp_path, capsys):
        gone = tmp_path / "gone"
        assert main(["top", "--run-dir", str(gone), "--once"]) == 1
        assert "not found" in capsys.readouterr().out


class TestFlattenAndDirection:
    def test_flatten_nested_numeric_leaves(self):
        flat = _flatten(
            {
                "a": {"solve_s": 1.5, "name": "x", "flag": True},
                "rows": [1, 2],
                "n": 3,
            }
        )
        assert flat == {"a.solve_s": 1.5, "n": 3.0}

    def test_direction_from_leaf_suffix(self):
        assert metric_direction("timings.value_iteration_s") == "lower"
        assert metric_direction("variants.tracer.vs_off") == "lower"
        assert metric_direction("engine_speedup") == "higher"
        assert metric_direction("sim.queries_per_s_qps") == "higher"
        assert metric_direction("accuracy") is None


class TestBenchHistory:
    def _record(self, out_dir, value, history=None):
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "micro.json").write_text(json.dumps({"solve_s": value}))
        return append_bench_history(out_dir, history_path=history)

    def test_append_skips_history_and_invalid_json(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "good.json").write_text(json.dumps({"x_s": 1.0}))
        (out / "bad.json").write_text("{not json")
        (out / "history.jsonl").write_text('{"bench": "stale"}\n')
        entries = append_bench_history(out)
        assert [e["bench"] for e in entries] == ["good"]
        lines = (out / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2  # stale line + the one new record

    def test_regression_flagged_beyond_tolerance(self, tmp_path):
        out = tmp_path / "out"
        self._record(out, 1.0)
        self._record(out, 1.5)  # 50% slower
        (regression,) = check_bench_history(out / "history.jsonl")
        assert regression.bench == "micro"
        assert regression.key == "solve_s"
        assert regression.better == "lower"
        assert regression.change == pytest.approx(0.5)
        assert "micro:solve_s" in regression.describe()

    def test_improvement_and_within_tolerance_pass(self, tmp_path):
        out = tmp_path / "out"
        self._record(out, 1.0)
        self._record(out, 1.2)  # within the default 25%
        assert check_bench_history(out / "history.jsonl") == []
        self._record(out, 0.5)  # big improvement: never flagged
        assert check_bench_history(out / "history.jsonl") == []

    def test_higher_is_better_direction(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        for qps in (100.0, 50.0):
            (out / "sim.json").write_text(json.dumps({"load_qps": qps}))
            append_bench_history(out)
        (regression,) = check_bench_history(out / "history.jsonl")
        assert regression.better == "higher"
        assert regression.latest == 50.0

    def test_only_latest_pair_compared(self, tmp_path):
        out = tmp_path / "out"
        for value in (5.0, 1.0, 1.1):  # old spike, then stable
            self._record(out, value)
        assert check_bench_history(out / "history.jsonl") == []

    def test_single_entry_and_zero_baseline_skipped(self, tmp_path):
        out = tmp_path / "out"
        self._record(out, 0.0)
        assert check_bench_history(out / "history.jsonl") == []
        self._record(out, 3.0)  # previous was exactly 0 → skipped
        assert check_bench_history(out / "history.jsonl") == []

    def test_missing_history_is_clean(self, tmp_path):
        assert check_bench_history(tmp_path / "none.jsonl") == []

    def test_untracked_keys_never_flagged(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        for acc in (0.9, 0.1):
            (out / "fig.json").write_text(json.dumps({"accuracy": acc}))
            append_bench_history(out)
        assert check_bench_history(out / "history.jsonl") == []

    def test_cli_append_then_check_gates(self, tmp_path, capsys):
        out = tmp_path / "out"
        self._record(out, 1.0)
        (out / "micro.json").write_text(json.dumps({"solve_s": 2.0}))
        args = ["bench-history", "--out-dir", str(out), "--check"]
        assert main(args) == 1
        assert "regression(s)" in capsys.readouterr().out
        # Looser tolerance passes without recording a new generation.
        assert (
            main(args + ["--no-append", "--tolerance", "2.0"]) == 0
        )
        lines = (out / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2
