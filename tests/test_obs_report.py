"""Run reports and bench-history regression tracking."""

import json

import pytest

from repro.cli import main
from repro.obs.aggregate import ShardTracer, merge_run_dir, write_merged_artifacts
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    Regression,
    append_bench_history,
    check_bench_history,
    metric_direction,
    render_run_report,
    write_run_report,
)
from repro.obs.report import _flatten


def populate_run_dir(run_dir):
    """One worker shard plus merged artifacts plus an audit report."""
    run_dir.mkdir(parents=True, exist_ok=True)
    shard = ShardTracer(run_dir / "shard-11.jsonl", pid=11)
    shard.instant("arrival", "balancer", 0.5)
    shard.complete("serve", "worker-0", 1.0, 4.0, args={"batch": 2})
    shard.instant(
        "completion",
        "worker-0",
        5.0,
        args={"satisfied": True, "accuracy": 0.75},
    )
    shard.instant(
        "completion",
        "worker-0",
        9.0,
        args={"satisfied": False, "accuracy": 0.75},
    )
    shard.counter("queue_depth", "worker-0", 2.0, 3.0)
    shard.close()

    registry = MetricsRegistry()
    registry.counter("queries_total", "Completed queries").inc(2)
    (run_dir / "metrics-11.json").write_text(json.dumps(registry.to_json_dict()))

    merged = merge_run_dir(run_dir)
    write_merged_artifacts(merged, run_dir)
    (run_dir / "audit.json").write_text(
        json.dumps({"ok": True, "windows": 4, "breaches": 0})
    )
    return run_dir


class TestRunReport:
    def test_text_report_sections(self, tmp_path):
        report = render_run_report(populate_run_dir(tmp_path / "run"))
        assert "ramsis run report" in report
        assert "worker shards" in report
        assert "shard-11.jsonl" in report
        assert "reconstructed from merged.jsonl" in report
        assert "completed queries" in report
        # 1 of 2 completions satisfied.
        assert "violation rate" in report and "50.000%" in report
        assert "merged metrics" in report
        assert "queries_total" in report
        assert "guarantee audit" in report
        assert "merged artifacts" in report

    def test_html_report_escapes_and_tabulates(self, tmp_path):
        report = render_run_report(populate_run_dir(tmp_path / "run"), fmt="html")
        assert report.startswith("<!doctype html>")
        assert "<table>" in report
        assert "<h2>worker shards</h2>" in report

    def test_empty_dir_reports_no_artifacts(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert "(no observability artifacts found)" in render_run_report(empty)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_run_report(tmp_path / "nope")

    def test_unknown_format_raises(self, tmp_path):
        populate_run_dir(tmp_path / "run")
        with pytest.raises(ValueError):
            render_run_report(tmp_path / "run", fmt="pdf")

    def test_batch_subdir_merged_jsonl_found(self, tmp_path):
        run_dir = tmp_path / "bank"
        populate_run_dir(run_dir / "batch-000")
        report = render_run_report(run_dir)
        assert "batch-000/merged.jsonl" in report.replace("\\", "/")

    def test_write_run_report_default_and_explicit_path(self, tmp_path):
        run_dir = populate_run_dir(tmp_path / "run")
        default = write_run_report(run_dir)
        assert default == run_dir / "report.txt"
        assert "worker shards" in default.read_text()
        explicit = write_run_report(
            run_dir, out_path=tmp_path / "deep" / "r.html", fmt="html"
        )
        assert explicit.is_file()
        assert explicit.read_text().startswith("<!doctype html>")

    def test_cli_report_run_dir(self, tmp_path, capsys):
        run_dir = populate_run_dir(tmp_path / "run")
        assert main(["report", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "worker shards" in out
        assert (run_dir / "report.txt").is_file()

    def test_cli_report_missing_run_dir_fails(self, tmp_path, capsys):
        assert main(["report", "--run-dir", str(tmp_path / "gone")]) == 1
        assert "not found" in capsys.readouterr().out


class TestFlattenAndDirection:
    def test_flatten_nested_numeric_leaves(self):
        flat = _flatten(
            {
                "a": {"solve_s": 1.5, "name": "x", "flag": True},
                "rows": [1, 2],
                "n": 3,
            }
        )
        assert flat == {"a.solve_s": 1.5, "n": 3.0}

    def test_direction_from_leaf_suffix(self):
        assert metric_direction("timings.value_iteration_s") == "lower"
        assert metric_direction("variants.tracer.vs_off") == "lower"
        assert metric_direction("engine_speedup") == "higher"
        assert metric_direction("sim.queries_per_s_qps") == "higher"
        assert metric_direction("accuracy") is None


class TestBenchHistory:
    def _record(self, out_dir, value, history=None):
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "micro.json").write_text(json.dumps({"solve_s": value}))
        return append_bench_history(out_dir, history_path=history)

    def test_append_skips_history_and_invalid_json(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "good.json").write_text(json.dumps({"x_s": 1.0}))
        (out / "bad.json").write_text("{not json")
        (out / "history.jsonl").write_text('{"bench": "stale"}\n')
        entries = append_bench_history(out)
        assert [e["bench"] for e in entries] == ["good"]
        lines = (out / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2  # stale line + the one new record

    def test_regression_flagged_beyond_tolerance(self, tmp_path):
        out = tmp_path / "out"
        self._record(out, 1.0)
        self._record(out, 1.5)  # 50% slower
        (regression,) = check_bench_history(out / "history.jsonl")
        assert regression.bench == "micro"
        assert regression.key == "solve_s"
        assert regression.better == "lower"
        assert regression.change == pytest.approx(0.5)
        assert "micro:solve_s" in regression.describe()

    def test_improvement_and_within_tolerance_pass(self, tmp_path):
        out = tmp_path / "out"
        self._record(out, 1.0)
        self._record(out, 1.2)  # within the default 25%
        assert check_bench_history(out / "history.jsonl") == []
        self._record(out, 0.5)  # big improvement: never flagged
        assert check_bench_history(out / "history.jsonl") == []

    def test_higher_is_better_direction(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        for qps in (100.0, 50.0):
            (out / "sim.json").write_text(json.dumps({"load_qps": qps}))
            append_bench_history(out)
        (regression,) = check_bench_history(out / "history.jsonl")
        assert regression.better == "higher"
        assert regression.latest == 50.0

    def test_only_latest_pair_compared(self, tmp_path):
        out = tmp_path / "out"
        for value in (5.0, 1.0, 1.1):  # old spike, then stable
            self._record(out, value)
        assert check_bench_history(out / "history.jsonl") == []

    def test_single_entry_and_zero_baseline_skipped(self, tmp_path):
        out = tmp_path / "out"
        self._record(out, 0.0)
        assert check_bench_history(out / "history.jsonl") == []
        self._record(out, 3.0)  # previous was exactly 0 → skipped
        assert check_bench_history(out / "history.jsonl") == []

    def test_missing_history_is_clean(self, tmp_path):
        assert check_bench_history(tmp_path / "none.jsonl") == []

    def test_untracked_keys_never_flagged(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        for acc in (0.9, 0.1):
            (out / "fig.json").write_text(json.dumps({"accuracy": acc}))
            append_bench_history(out)
        assert check_bench_history(out / "history.jsonl") == []

    def test_cli_append_then_check_gates(self, tmp_path, capsys):
        out = tmp_path / "out"
        self._record(out, 1.0)
        (out / "micro.json").write_text(json.dumps({"solve_s": 2.0}))
        args = ["bench-history", "--out-dir", str(out), "--check"]
        assert main(args) == 1
        assert "regression(s)" in capsys.readouterr().out
        # Looser tolerance passes without recording a new generation.
        assert (
            main(args + ["--no-append", "--tolerance", "2.0"]) == 0
        )
        lines = (out / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2
