"""Edge-case tests for arrival sampling across interval boundaries."""

import numpy as np
import pytest

from repro.arrivals.distributions import DeterministicArrivals, PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace


class TestBoundaryCarryover:
    def test_deterministic_gap_straddles_boundary(self, rng):
        """With deterministic gaps, the residual gap carries into the next
        interval scaled by the rate ratio — no phantom arrival appears at
        the boundary."""
        # 10 QPS (gap 100 ms) for 1 s, then 100 QPS (gap 10 ms) for 1 s.
        trace = LoadTrace(interval_ms=1_000.0, qps=(10.0, 100.0))
        times = sample_arrival_times(trace, DeterministicArrivals(10.0), rng)
        gaps = np.diff(times)
        # No duplicate arrival exactly at the boundary.
        assert (gaps > 1e-9).all()
        # Second-interval arrivals are 10 ms apart.
        second = times[times >= 1_000.0]
        assert np.allclose(np.diff(second), 10.0)

    def test_long_lull_spans_empty_interval(self, rng):
        """A near-zero-rate middle interval passes the pending gap through
        without stranding the sampler."""
        trace = LoadTrace(interval_ms=1_000.0, qps=(200.0, 1e-6, 200.0))
        times = sample_arrival_times(trace, PoissonArrivals(200.0), rng)
        middle = np.sum((times >= 1_000.0) & (times < 2_000.0))
        assert middle <= 1
        first = np.sum(times < 1_000.0)
        last = np.sum(times >= 2_000.0)
        assert first == pytest.approx(200, rel=0.25)
        assert last == pytest.approx(200, rel=0.25)

    def test_many_tiny_intervals(self, rng):
        """Hundreds of 50 ms intervals: totals still match expectation."""
        qps = tuple(100.0 + 50.0 * np.sin(i / 10.0) for i in range(200))
        trace = LoadTrace(interval_ms=50.0, qps=qps)
        times = sample_arrival_times(trace, PoissonArrivals(100.0), rng)
        assert times.shape[0] == pytest.approx(
            trace.expected_queries(), rel=0.1
        )

    def test_all_zero_trace_yields_no_arrivals(self, rng):
        trace = LoadTrace(interval_ms=1_000.0, qps=(0.0, 0.0))
        times = sample_arrival_times(trace, PoissonArrivals(10.0), rng)
        assert times.shape[0] == 0

    def test_single_very_short_interval(self, rng):
        trace = LoadTrace.constant(1000.0, 10.0)  # 10 ms at 1000 QPS
        times = sample_arrival_times(trace, PoissonArrivals(1000.0), rng)
        assert (times < 10.0).all()
        assert times.shape[0] <= 40  # ~10 expected; generous tail bound
