"""Extra coverage for reporting: render_comparison and series grouping."""

from repro.experiments.reporting import render_comparison, series_by_method
from repro.experiments.runner import MethodPoint


def point(method, workers=2, load=None, acc=0.7, viol=0.01, slo=150.0):
    return MethodPoint(
        task="image",
        method=method,
        slo_ms=slo,
        num_workers=workers,
        load_qps=load,
        accuracy=acc,
        violation_rate=viol,
        queries=100,
    )


class TestSeriesByMethod:
    def test_groups_and_sorts(self):
        points = [
            point("RAMSIS", workers=4),
            point("RAMSIS", workers=2),
            point("JF", workers=2),
        ]
        grouped = series_by_method(points)
        assert set(grouped) == {"RAMSIS", "JF"}
        assert [p.num_workers for p in grouped["RAMSIS"]] == [2, 4]

    def test_sorts_by_load_within_workers(self):
        points = [
            point("MS", workers=2, load=80.0),
            point("MS", workers=2, load=40.0),
        ]
        grouped = series_by_method(points)
        assert [p.load_qps for p in grouped["MS"]] == [40.0, 80.0]


class TestRenderComparison:
    def test_full_block(self):
        points = [
            point("RAMSIS", workers=2, acc=0.78),
            point("RAMSIS", workers=4, acc=0.82),
            point("MS", workers=2, acc=0.74),
            point("MS", workers=4, acc=0.78),
            point("JF", workers=2, acc=0.73),
        ]
        text = render_comparison(points, ["MS", "JF"])
        assert "ModelSwitching" in text
        assert "Jellyfish" in text
        assert "average accuracy % increase" in text
        # RAMSIS matches MS@4 (0.78) with 2 workers -> 50% savings line.
        assert "up to 50.00%" in text

    def test_empty_points(self):
        assert render_comparison([], ["MS"]) == ""

    def test_unknown_baseline_label_passthrough(self):
        points = [point("RAMSIS"), point("Greedy", acc=0.6)]
        text = render_comparison(points, ["Greedy"])
        assert "Greedy" in text
