"""End-to-end audit tests: clean seeded runs stay clean, stale policies
get flagged, and the CLI/report plumbing round-trips."""

import json

import pytest

from repro.arrivals.traces import LoadTrace
from repro.cli import main
from repro.experiments.reporting import audit_comparison_table
from repro.experiments.runner import clear_caches, run_audited
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer

from .conftest import make_tiny_model_set


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def tiny_task() -> TaskSpec:
    return TaskSpec(name="tiny", model_set=make_tiny_model_set(), slos_ms=(100.0,))


def audited(load_qps, duration_ms, workers, policy_load_qps=None, seed=7, **kwargs):
    return run_audited(
        tiny_task(),
        100.0,
        workers,
        LoadTrace.constant(load_qps, duration_ms),
        ExperimentScale.smoke(),
        seed=seed,
        policy_load_qps=policy_load_qps,
        **kwargs,
    )


class TestCleanRun:
    def test_seeded_run_audits_clean(self):
        tracer = RecordingTracer()
        registry = MetricsRegistry()
        run = audited(
            40.0, 30_000.0, workers=2, tracer=tracer, registry=registry
        )
        report = run.report

        # Acceptance: a clean seeded run produces zero bound-breach
        # verdicts and TV below the documented default threshold (0.25).
        assert report.ok, report.verdict
        assert report.violation_breaches == 0
        assert report.accuracy_breaches == 0
        assert report.windows, "expected at least one closed window"
        assert report.occupancy is not None
        assert report.occupancy.trusted
        assert report.occupancy.tv_distance < 0.25
        assert report.drift_events == ()

        # The §5.1 bounds actually held pointwise, not just within CI.
        assert report.observed_accuracy >= run.guarantees.expected_accuracy
        assert (
            report.observed_violation_rate
            <= run.guarantees.expected_violation_rate + 0.02
        )

        # Audit totals agree with the simulator's own accounting.
        assert report.total_queries == run.point.queries

        # Windows + occupancy flowed to the inner tracer and registry.
        audit_names = [e.name for e in tracer.events if e.track == "audit"]
        assert audit_names.count("audit_window") == len(report.windows)
        (windows_metric,) = registry.collect("audit_windows_total")
        assert windows_metric.value == float(len(report.windows))

    def test_report_json_round_trips(self):
        run = audited(30.0, 10_000.0, workers=1)
        payload = json.loads(json.dumps(run.report.to_json_dict()))
        assert payload["ok"] is True
        assert payload["occupancy"]["tv_distance"] < 0.25

    def test_comparison_table_renders(self):
        runs = [audited(30.0, 10_000.0, workers=1)]
        table = audit_comparison_table(runs)
        assert "Predicted" in table and "observed" in table
        assert "tiny" in table
        assert "ok" in table


class TestAdversarialRun:
    def test_stale_policy_is_flagged(self):
        # Policy profiled for 15 QPS, actual load 60 QPS on one worker:
        # the auditor must flag both the bound breach and the load drift.
        run = audited(60.0, 20_000.0, workers=1, policy_load_qps=15.0)
        report = run.report

        assert not report.ok
        assert report.violation_breaches > 0
        assert len(report.drift_events) >= 1
        assert report.drift_events[0].direction == "up"
        assert report.drift_events[0].realized_qps > 15.0

        assert "violation-bound-breach" in report.verdict
        assert "load-drift" in report.verdict

    def test_stale_policy_occupancy_diverges(self):
        run = audited(60.0, 20_000.0, workers=1, policy_load_qps=15.0)
        occupancy = run.report.occupancy
        assert occupancy is not None and occupancy.trusted
        assert occupancy.tv_distance > 0.25


class TestAuditCli:
    def test_clean_run_exits_zero_and_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "audit"
        code = main(
            [
                "audit",
                "--task",
                "text",
                "--workers",
                "1",
                "--load",
                "30",
                "--duration",
                "10",
                "--scale",
                "smoke",
                "--seed",
                "11",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Audit verdict: ok" in captured

        report = json.loads((out / "audit.json").read_text())
        assert report["ok"] is True
        assert report["windows"]
        assert (out / "audit.txt").read_text().startswith("Audit verdict")
        assert (out / "events.jsonl").stat().st_size > 0
        assert (out / "metrics.prom").stat().st_size > 0
        prom = (out / "metrics.prom").read_text()
        assert "audit_windows_total" in prom

    def test_stale_policy_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "audit_bad"
        code = main(
            [
                "audit",
                "--task",
                "text",
                "--workers",
                "1",
                "--load",
                "60",
                "--policy-load",
                "15",
                "--duration",
                "10",
                "--scale",
                "smoke",
                "--seed",
                "11",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 1
        report = json.loads((out / "audit.json").read_text())
        assert report["ok"] is False
        assert report["violation_breaches"] > 0
        assert report["drift_events"]
