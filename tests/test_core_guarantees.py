"""Tests for stationary analysis and §5.1 guarantees."""

import numpy as np
import pytest
from dataclasses import replace

from repro.core.generator import generate_policy
from repro.core.guarantees import evaluate_policy, stationary_distribution
from repro.core.mdp import build_worker_mdp
from repro.core.solvers import value_iteration


class TestStationaryDistribution:
    def test_is_probability_vector(self, tiny_config):
        mdp = build_worker_mdp(tiny_config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        dist = stationary_distribution(mdp, policy)
        assert dist.min() >= 0.0
        assert dist.sum() == pytest.approx(1.0, abs=1e-9)

    def test_is_fixed_point(self, tiny_config):
        """dist @ P == dist for the policy-induced chain."""
        mdp = build_worker_mdp(tiny_config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        dist = stationary_distribution(mdp, policy, tolerance=1e-12)
        from repro.core.guarantees import _policy_action_table

        table = _policy_action_table(mdp, policy)
        stepped = np.zeros_like(dist)
        for state in range(mdp.space.size):
            if state == mdp.space.EMPTY:
                row = mdp.transition_row(state, (0, 1))
            else:
                n, _ = mdp.space.decode(state)
                row = mdp.transition_row(state, table[state])
            stepped += dist[state] * row
        assert np.allclose(stepped, dist, atol=1e-8)

    def test_low_load_alternates_idle_and_single_query(self, tiny_config):
        """The chain is over decision epochs: at negligible load the worker
        alternates empty -> (1, SLO) -> empty, each ~half the epochs."""
        config = tiny_config.with_load(1.0)  # 1 QPS, services ~10-60 ms
        mdp = build_worker_mdp(config)
        policy = mdp.extract_policy(value_iteration(mdp).values)
        dist = stationary_distribution(mdp, policy)
        fresh = mdp.space.index(1, mdp.grid.slo_index)
        assert dist[mdp.space.EMPTY] > 0.45
        assert dist[fresh] > 0.45
        assert dist[mdp.space.FULL] < 1e-9


class TestGuarantees:
    def test_shapes_and_ranges(self, tiny_config):
        g = generate_policy(tiny_config).guarantees
        assert 0.0 <= g.expected_accuracy <= 1.0
        assert 0.0 <= g.expected_violation_rate <= 1.0
        assert 0.0 <= g.full_state_probability <= 1.0
        assert 0.0 <= g.idle_probability <= 1.0

    def test_meets_thresholds(self, tiny_config):
        g = generate_policy(tiny_config).guarantees
        assert g.meets(0.0, 1.0)
        assert not g.meets(1.01, 1.0)
        assert not g.meets(0.0, -0.1)

    def test_accuracy_between_model_extremes(self, tiny_config):
        g = generate_policy(tiny_config).guarantees
        assert 0.60 - 1e-9 <= g.expected_accuracy <= 0.90 + 1e-9

    def test_load_monotonicity(self, tiny_config):
        """More load -> lower (or equal) expected accuracy: the policy must
        fall back to faster models (the paper's Fig. 6 trend)."""
        accuracies = []
        for load in (5.0, 20.0, 45.0):
            g = generate_policy(tiny_config.with_load(load)).guarantees
            accuracies.append(g.expected_accuracy)
        assert accuracies[0] >= accuracies[1] >= accuracies[2] - 0.02

    def test_overload_blows_up_violations(self, tiny_config):
        """Beyond the fastest model's throughput the violation bound must
        be large (the §4.2.3 full-queue regime)."""
        g = generate_policy(tiny_config.with_load(1000.0)).guarantees
        assert g.expected_violation_rate > 0.5
        assert g.full_state_probability > 0.1

    def test_per_epoch_variants_populated(self, tiny_config):
        g = generate_policy(tiny_config).guarantees
        assert 0.0 <= g.per_epoch_accuracy <= 1.0
        assert 0.0 <= g.per_epoch_violation_rate <= 1.0

    def test_expected_accuracy_lower_bounds_simulation(self, tiny_config):
        """§5.1's headline claim at a satisfiable load: observed accuracy
        >= expectation, observed violations <= expectation."""
        from repro.arrivals.distributions import PoissonArrivals
        from repro.arrivals.traces import LoadTrace
        from repro.selectors import RamsisSelector
        from repro.sim import OracleLoadMonitor, Simulation, SimulationConfig

        result = generate_policy(tiny_config.with_load(20.0))
        trace = LoadTrace.constant(20.0, 60_000.0)
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_config.model_set,
                slo_ms=tiny_config.slo_ms,
                num_workers=1,
                max_batch_size=8,
                monitor=OracleLoadMonitor(trace),
                seed=2,
            )
        )
        metrics = sim.run(
            RamsisSelector(result.policy), trace, pattern=PoissonArrivals(20.0)
        )
        g = result.guarantees
        assert metrics.accuracy_per_satisfied_query >= g.expected_accuracy - 0.02
        assert metrics.violation_rate <= g.expected_violation_rate + 0.02
