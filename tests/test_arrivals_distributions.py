"""Tests for repro.arrivals.distributions."""

import math

import numpy as np
import pytest

from repro.arrivals.distributions import (
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
    resolve_distribution,
)


class TestPoissonArrivals:
    def test_rate_conversion(self):
        d = PoissonArrivals(1000.0)
        assert d.rate_per_ms == pytest.approx(1.0)
        assert d.mean_interarrival_ms == pytest.approx(1.0)

    def test_pmf_matches_closed_form(self):
        d = PoissonArrivals(100.0)  # 0.1 / ms
        mu = 0.1 * 50.0
        for k in range(6):
            expected = math.exp(-mu) * mu**k / math.factorial(k)
            assert d.pmf(k, 50.0) == pytest.approx(expected, rel=1e-12)

    def test_pmf_vector_sums_to_one(self):
        d = PoissonArrivals(200.0)
        bound = d.support_bound(100.0)
        assert d.pmf_vector(bound, 100.0).sum() == pytest.approx(1.0, abs=1e-9)

    def test_zero_window_is_degenerate(self):
        d = PoissonArrivals(500.0)
        vec = d.pmf_vector(5, 0.0)
        assert vec[0] == 1.0
        assert vec[1:].sum() == 0.0

    def test_negative_k_probability_zero(self):
        assert PoissonArrivals(10.0).pmf(-1, 5.0) == 0.0

    def test_cdf_monotone(self):
        d = PoissonArrivals(80.0)
        cdf = d.cdf_vector(30, 200.0)
        assert np.all(np.diff(cdf) >= -1e-15)

    def test_support_bound_captures_tail(self):
        d = PoissonArrivals(1000.0)
        bound = d.support_bound(100.0, epsilon=1e-9)
        assert d.cdf(bound, 100.0) >= 1.0 - 1e-9

    def test_sample_interarrivals_mean(self, rng):
        d = PoissonArrivals(100.0)
        gaps = d.sample_interarrivals(rng, 50_000)
        assert gaps.mean() == pytest.approx(10.0, rel=0.05)

    def test_split_divides_load(self):
        d = PoissonArrivals(120.0).split(4)
        assert isinstance(d, PoissonArrivals)
        assert d.load_qps == pytest.approx(30.0)

    def test_split_round_robin_is_erlang(self):
        d = PoissonArrivals(120.0).split_round_robin(4)
        assert isinstance(d, GammaArrivals)
        assert d.shape == pytest.approx(4.0)
        assert d.load_qps == pytest.approx(30.0)

    def test_split_round_robin_single_worker_is_identity(self):
        base = PoissonArrivals(120.0)
        assert base.split_round_robin(1) is base

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-5.0)

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(10.0).split(0)


class TestGammaArrivals:
    def test_shape_one_matches_poisson(self):
        gamma = GammaArrivals(150.0, shape=1.0)
        poisson = PoissonArrivals(150.0)
        for k in range(8):
            assert gamma.pmf(k, 40.0) == pytest.approx(
                poisson.pmf(k, 40.0), abs=1e-9
            )

    def test_pmf_vector_full_mass(self):
        d = GammaArrivals(100.0, shape=3.0)
        bound = d.support_bound(80.0)
        assert d.pmf_vector(bound, 80.0).sum() == pytest.approx(1.0, abs=1e-8)

    def test_higher_shape_more_regular(self):
        """Count variance shrinks as the gap distribution gets regular."""
        window = 200.0

        def count_variance(shape: float) -> float:
            d = GammaArrivals(100.0, shape=shape)
            ks = np.arange(0, 200)
            pmf = d.pmf_vector(199, window)
            mean = float((ks * pmf).sum())
            return float(((ks - mean) ** 2 * pmf).sum())

        assert count_variance(4.0) < count_variance(1.0)

    def test_sample_mean_matches_load(self, rng):
        d = GammaArrivals(50.0, shape=2.5)
        gaps = d.sample_interarrivals(rng, 50_000)
        assert gaps.mean() == pytest.approx(20.0, rel=0.05)

    def test_split_round_robin_multiplies_shape(self):
        d = GammaArrivals(90.0, shape=2.0).split_round_robin(3)
        assert isinstance(d, GammaArrivals)
        assert d.shape == pytest.approx(6.0)
        assert d.load_qps == pytest.approx(30.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            GammaArrivals(10.0, shape=0.0)


class TestDeterministicArrivals:
    def test_counts_are_deterministic(self):
        d = DeterministicArrivals(100.0)  # gap 10 ms
        assert d.pmf(3, 35.0) == 1.0
        assert d.pmf(2, 35.0) == 0.0
        assert d.pmf(0, 5.0) == 1.0

    def test_sample_constant_gaps(self, rng):
        d = DeterministicArrivals(200.0)
        gaps = d.sample_interarrivals(rng, 10)
        assert np.all(gaps == 5.0)

    def test_support_bound_terminates(self):
        d = DeterministicArrivals(100.0)
        assert d.support_bound(55.0) >= 5


class TestResolveDistribution:
    def test_resolves_all_names(self):
        assert isinstance(resolve_distribution("poisson", 10.0), PoissonArrivals)
        assert isinstance(resolve_distribution("gamma", 10.0), GammaArrivals)
        assert isinstance(
            resolve_distribution("deterministic", 10.0), DeterministicArrivals
        )

    def test_gamma_shape_passthrough(self):
        d = resolve_distribution("gamma", 10.0, shape=5.0)
        assert isinstance(d, GammaArrivals)
        assert d.shape == 5.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_distribution("weibull", 10.0)
