"""Golden equivalence suite: the fast event loop vs the reference loop.

The optimized engine (`engine="fast"`) must produce **float-identical**
:class:`~repro.sim.metrics.SimulationMetrics` to the original reference
loop (`engine="reference"`) in every supported configuration — same IEEE
operation order, same heap tie-breaking, same RNG consumption.  Every test
here asserts exact dataclass equality, not approximate closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.traces import LoadTrace
from repro.balancers import ShortestQueueBalancer
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer
from repro.selectors import (
    GreedyDeadlineSelector,
    JellyfishPlusSelector,
    RamsisSelector,
)
from repro.sim.latency_model import StochasticLatency
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig
from tests.conftest import make_tiny_model_set

TRACE = LoadTrace.constant(120.0, 8_000.0, name="eq-const")


def run_engine(engine, selector_factory, trace=TRACE, arrival_times=None, **cfg):
    """One fresh simulation (fresh config, selector, monitor) per engine."""
    cfg.setdefault("model_set", make_tiny_model_set())
    cfg.setdefault("slo_ms", 100.0)
    cfg.setdefault("num_workers", 2)
    cfg.setdefault("max_batch_size", 8)
    sim = Simulation(SimulationConfig(**cfg))
    return sim.run(
        selector_factory(), trace, arrival_times=arrival_times, engine=engine
    )


def assert_engines_identical(selector_factory, **cfg):
    reference = run_engine("reference", selector_factory, **cfg)
    fast = run_engine("fast", selector_factory, **cfg)
    assert fast == reference
    return fast


def tiny_policy(num_workers=2, load_qps=60.0, slo_ms=100.0):
    config = WorkerMDPConfig.default_poisson(
        make_tiny_model_set(),
        slo_ms=slo_ms,
        load_qps=load_qps,
        num_workers=num_workers,
        fld_resolution=10,
        max_batch_size=8,
    )
    return generate_policy(config, with_guarantees=False).policy


class TestEngineEquivalence:
    def test_ramsis_per_worker(self):
        policy = tiny_policy()
        metrics = assert_engines_identical(lambda: RamsisSelector(policy))
        assert metrics.total_queries > 0

    def test_greedy_per_worker(self):
        assert_engines_identical(GreedyDeadlineSelector)

    def test_jellyfish_central(self):
        metrics = assert_engines_identical(JellyfishPlusSelector)
        assert metrics.decisions > 0

    def test_drop_late(self):
        # Overload so late actions occur and the drop path is exercised.
        overload = LoadTrace.constant(400.0, 5_000.0, name="eq-overload")
        metrics = assert_engines_identical(
            GreedyDeadlineSelector, trace=overload, drop_late=True
        )
        assert metrics.violation_rate > 0.0

    def test_drop_late_central(self):
        overload = LoadTrace.constant(400.0, 5_000.0, name="eq-overload")
        assert_engines_identical(
            JellyfishPlusSelector, trace=overload, drop_late=True
        )

    def test_heterogeneous_worker_speeds(self):
        assert_engines_identical(
            GreedyDeadlineSelector, worker_speed_factors=(1.0, 1.7)
        )

    def test_stochastic_latency(self):
        # The stochastic model draws once per dispatch in dispatch order,
        # so RNG consumption must line up exactly between engines.
        metrics = assert_engines_identical(
            GreedyDeadlineSelector,
            latency_model=StochasticLatency(seed=5),
            seed=7,
        )
        assert metrics.total_queries > 0

    def test_shortest_queue_balancer(self):
        assert_engines_identical(
            GreedyDeadlineSelector, balancer=ShortestQueueBalancer()
        )

    def test_oracle_monitor(self):
        policy = tiny_policy()
        assert_engines_identical(
            lambda: RamsisSelector(policy), monitor=OracleLoadMonitor(TRACE)
        )

    def test_no_response_tracking(self):
        assert_engines_identical(GreedyDeadlineSelector, track_responses=False)

    def test_per_worker_selector_list(self):
        policy = tiny_policy()

        def factory():
            return [RamsisSelector(policy), GreedyDeadlineSelector()]

        assert_engines_identical(factory)

    def test_single_worker(self):
        assert_engines_identical(GreedyDeadlineSelector, num_workers=1)

    def test_explicit_arrivals(self):
        arrivals = np.array([0.0, 1.0, 1.0, 2.5, 40.0, 41.0, 300.0])
        assert_engines_identical(
            GreedyDeadlineSelector,
            trace=LoadTrace.constant(10.0, 400.0),
            arrival_times=arrivals,
        )


class TestEngineDispatch:
    def test_auto_without_observability_matches_reference(self):
        auto = run_engine("auto", GreedyDeadlineSelector)
        reference = run_engine("reference", GreedyDeadlineSelector)
        assert auto == reference

    def test_auto_with_registry_runs_traced_path_identically(self):
        # Observability forces the reference loop; its metrics must equal
        # the fast engine's on an un-instrumented twin config.
        observed = run_engine(
            "auto", GreedyDeadlineSelector, registry=MetricsRegistry()
        )
        fast = run_engine("fast", GreedyDeadlineSelector)
        assert observed == fast

    def test_auto_with_tracer_runs_traced_path_identically(self):
        observed = run_engine(
            "auto", GreedyDeadlineSelector, tracer=RecordingTracer()
        )
        fast = run_engine("fast", GreedyDeadlineSelector)
        assert observed == fast

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            run_engine("warp", GreedyDeadlineSelector)


class TestRunValidation:
    def test_max_batch_size_validated(self):
        with pytest.raises(SimulationError):
            SimulationConfig(
                model_set=make_tiny_model_set(),
                slo_ms=100.0,
                num_workers=1,
                max_batch_size=0,
            )

    def test_unsorted_arrivals_are_sorted(self):
        trace = LoadTrace.constant(10.0, 1_000.0)
        arrivals = np.array([5.0, 0.0, 12.0, 3.0, 3.0, 90.0, 44.0])
        for engine in ("reference", "fast"):
            shuffled = run_engine(
                "fast" if engine == "fast" else "reference",
                GreedyDeadlineSelector,
                trace=trace,
                arrival_times=arrivals,
            )
            ordered = run_engine(
                engine,
                GreedyDeadlineSelector,
                trace=trace,
                arrival_times=np.sort(arrivals),
            )
            assert shuffled == ordered
