"""Persistent policy cache: keys, round-trips, corruption handling."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.arrivals.distributions import ArrivalDistribution, PoissonArrivals
from repro.cache import (
    CACHE_SCHEMA_VERSION,
    ENV_VAR,
    PolicyCache,
    cache_key,
    canonical_config_dict,
)
from repro.core.generator import generate_policy
from repro.obs.metrics import MetricsRegistry

TOL = 1e-6


class OpaqueArrivals(ArrivalDistribution):
    """An arrival family the canonicalizer does not know -> uncacheable."""

    def __init__(self, load_qps: float) -> None:
        super().__init__(load_qps)
        self._inner = PoissonArrivals(load_qps)

    def pmf_vector(self, kmax, window_ms):
        return self._inner.pmf_vector(kmax, window_ms)

    def sample_interarrivals(self, rng, count):
        return self._inner.sample_interarrivals(rng, count)

    def with_load(self, load_qps):
        return OpaqueArrivals(load_qps)


@pytest.fixture
def result(tiny_config):
    return generate_policy(tiny_config, tolerance=TOL)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_cache_key_is_stable(tiny_config):
    first = cache_key(tiny_config, TOL)
    assert first is not None
    assert cache_key(tiny_config, TOL) == first
    # A structurally equal config (fresh arrivals object, same load)
    # hashes to the same digest.
    rebuilt = tiny_config.with_load(tiny_config.arrivals.load_qps)
    assert cache_key(rebuilt, TOL) == first


@pytest.mark.parametrize(
    "mutate",
    [
        lambda c: c.with_load(c.arrivals.load_qps + 1.0),
        lambda c: replace(c, slo_ms=c.slo_ms + 10.0),
        lambda c: replace(c, num_workers=c.num_workers + 1),
        lambda c: replace(c, fld_resolution=c.fld_resolution + 1),
        lambda c: replace(c, max_batch_size=c.max_batch_size - 1),
    ],
    ids=["load", "slo", "workers", "fld", "batch"],
)
def test_cache_key_sensitive_to_config(tiny_config, mutate):
    assert cache_key(mutate(tiny_config), TOL) != cache_key(tiny_config, TOL)


def test_cache_key_sensitive_to_tolerance(tiny_config):
    assert cache_key(tiny_config, 1e-6) != cache_key(tiny_config, 1e-7)


def test_cache_key_embeds_schema_version(tiny_config):
    canonical = canonical_config_dict(tiny_config, TOL)
    assert canonical["schema_version"] == CACHE_SCHEMA_VERSION
    assert canonical["tolerance"] == TOL
    assert canonical["slo_ms"] == tiny_config.slo_ms


def test_uncacheable_config(tiny_config, tmp_path, result):
    opaque = replace(tiny_config, arrivals=OpaqueArrivals(25.0))
    assert cache_key(opaque, TOL) is None
    cache = PolicyCache(directory=tmp_path)
    assert cache.put(opaque, TOL, result) is None
    assert cache.get(opaque, TOL) is None
    assert cache.misses == 1
    assert cache.stats()["artifacts"] == 0


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_round_trip(tiny_config, tmp_path, result):
    cache = PolicyCache(directory=tmp_path)
    path = cache.put(tiny_config, TOL, result)
    assert path is not None and path.is_file()
    assert cache.stores == 1

    restored = cache.get(tiny_config, TOL)
    assert restored is not None
    assert cache.hits == 1
    assert restored.from_cache
    assert not result.from_cache
    assert json.dumps(restored.policy.to_json_dict(), sort_keys=True) == (
        json.dumps(result.policy.to_json_dict(), sort_keys=True)
    )
    assert restored.guarantees == result.guarantees
    assert restored.iterations == result.iterations
    assert np.array_equal(restored.values, result.values)


def test_get_on_empty_cache_is_miss(tiny_config, tmp_path):
    cache = PolicyCache(directory=tmp_path)
    assert cache.get(tiny_config, TOL) is None
    assert cache.misses == 1
    assert cache.invalidations == 0


def test_registry_counters(tiny_config, tmp_path, result):
    registry = MetricsRegistry()
    cache = PolicyCache(directory=tmp_path, registry=registry)
    cache.get(tiny_config, TOL)
    cache.put(tiny_config, TOL, result)
    cache.get(tiny_config, TOL)
    assert registry.counter("policy_cache_misses_total").value == 1
    assert registry.counter("policy_cache_stores_total").value == 1
    assert registry.counter("policy_cache_hits_total").value == 1


# ----------------------------------------------------------------------
# Corruption
# ----------------------------------------------------------------------
def test_truncated_artifact_falls_back(tiny_config, tmp_path, result, caplog):
    cache = PolicyCache(directory=tmp_path)
    path = cache.put(tiny_config, TOL, result)
    path.write_text(path.read_text()[:80])

    with caplog.at_level("WARNING", logger="repro.cache"):
        assert cache.get(tiny_config, TOL) is None
    assert cache.invalidations == 1
    assert cache.misses == 1
    assert any("corrupt" in r.message for r in caplog.records)

    # The next put overwrites the bad artifact and gets back to a hit.
    cache.put(tiny_config, TOL, result)
    assert cache.get(tiny_config, TOL) is not None


def test_schema_version_mismatch_invalidates(tiny_config, tmp_path, result):
    cache = PolicyCache(directory=tmp_path)
    path = cache.put(tiny_config, TOL, result)
    data = json.loads(path.read_text())
    data["schema_version"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(data))
    assert cache.get(tiny_config, TOL) is None
    assert cache.invalidations == 1


# ----------------------------------------------------------------------
# Directory resolution
# ----------------------------------------------------------------------
def test_env_var_resolves_directory(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "env-cache"))
    assert PolicyCache().directory == tmp_path / "env-cache"
    # An explicit directory always wins over the environment.
    assert PolicyCache(directory=tmp_path / "x").directory == tmp_path / "x"


# ----------------------------------------------------------------------
# Maintenance (stats / verify / clear)
# ----------------------------------------------------------------------
def test_stats_verify_clear(tiny_config, tmp_path, result):
    cache = PolicyCache(directory=tmp_path)
    good = cache.put(tiny_config, TOL, result)
    bad = cache.put(tiny_config.with_load(30.0), TOL, result)
    bad.write_text("{ nope")

    stats = cache.stats()
    assert stats["artifacts"] == 2
    assert stats["total_bytes"] > 0
    assert stats["directory"] == str(tmp_path)

    report = cache.verify()
    assert report["ok"] == [str(good)]
    assert report["corrupt"] == [str(bad)]

    assert cache.clear() == 2
    assert cache.stats()["artifacts"] == 0


def test_verify_catches_digest_mismatch(tiny_config, tmp_path, result):
    cache = PolicyCache(directory=tmp_path)
    path = cache.put(tiny_config, TOL, result)
    # Valid JSON stored under a name that does not match its key digest.
    moved = path.with_name("0" * 64 + ".json")
    moved.write_text(path.read_text())
    path.unlink()
    report = cache.verify()
    assert report["corrupt"] == [str(moved)]
