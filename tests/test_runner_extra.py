"""Extra coverage for the experiment runner's selector factory."""

import pytest

from repro.arrivals.traces import LoadTrace
from repro.errors import ConfigurationError
from repro.experiments.runner import clear_caches, make_selector
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import image_task
from repro.selectors import (
    GreedyDeadlineSelector,
    InfaasAdaptedSelector,
    JellyfishPlusSelector,
    ModelSwitchingSelector,
    RamsisSelector,
)

SMOKE = ExperimentScale.smoke()
TRACE = LoadTrace.constant(40.0, 2_000.0)


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()


class TestMakeSelector:
    def test_ramsis_pinned(self):
        sel = make_selector(
            "RAMSIS", image_task(), 150.0, 2, TRACE, SMOKE, pinned_load_qps=40.0
        )
        assert isinstance(sel, RamsisSelector)
        assert sel.current_policy(40.0).load_qps == 40.0

    def test_ramsis_policy_set(self):
        trace = LoadTrace(interval_ms=1_000.0, qps=(20.0, 60.0))
        sel = make_selector("RAMSIS", image_task(), 150.0, 2, trace, SMOKE)
        assert isinstance(sel, RamsisSelector)
        # Policy set covers the trace's load range.
        low = sel.current_policy(20.0)
        high = sel.current_policy(60.0)
        assert low.load_qps <= high.load_qps

    def test_jf(self):
        sel = make_selector("JF", image_task(), 150.0, 2, TRACE, SMOKE)
        assert isinstance(sel, JellyfishPlusSelector)

    def test_ms(self):
        sel = make_selector("MS", image_task(), 150.0, 2, TRACE, SMOKE)
        assert isinstance(sel, ModelSwitchingSelector)

    def test_greedy(self):
        sel = make_selector("Greedy", image_task(), 150.0, 2, TRACE, SMOKE)
        assert isinstance(sel, GreedyDeadlineSelector)

    def test_infaas_with_target(self):
        sel = make_selector(
            "INFaaS@0.77", image_task(), 150.0, 2, TRACE, SMOKE
        )
        assert isinstance(sel, InfaasAdaptedSelector)
        assert sel.accuracy_target == pytest.approx(0.77)

    def test_infaas_default_target(self):
        sel = make_selector("INFaaS", image_task(), 150.0, 2, TRACE, SMOKE)
        assert isinstance(sel, InfaasAdaptedSelector)
        assert sel.accuracy_target == 0.0

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_selector("Nexus", image_task(), 150.0, 2, TRACE, SMOKE)
