"""Smoke tests: the fast examples must run end to end.

Only the examples that finish in seconds are executed here (quickstart and
the runtime demo); the longer scenario scripts are exercised indirectly —
every API they touch is covered by the unit and experiment tests.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_examples_directory_complete(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "capacity_planning.py",
            "trace_replay.py",
            "custom_models.py",
            "serving_runtime_demo.py",
            "multi_slo_serving.py",
        } <= present

    def test_quickstart_runs(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "RAMSIS" in result.stdout
        assert "Jellyfish+" in result.stdout
        assert "expected accuracy" in result.stdout

    def test_serving_runtime_demo_runs(self):
        result = _run("serving_runtime_demo.py")
        assert result.returncode == 0, result.stderr
        assert "runtime (threads" in result.stdout
        assert "simulator (deterministic p95)" in result.stdout

    def test_custom_models_runs(self):
        result = _run("custom_models.py")
        assert result.returncode == 0, result.stderr
        assert "asr_tiny" in result.stdout
        assert "poisson" in result.stdout
