"""Tests for repro.arrivals.traces."""

import pytest

from repro.arrivals.traces import LoadTrace, synthesize_twitter_trace
from repro.errors import TraceError


class TestLoadTrace:
    def test_basic_properties(self):
        t = LoadTrace(interval_ms=10_000.0, qps=(100.0, 200.0, 300.0))
        assert t.duration_ms == 30_000.0
        assert t.peak_qps == 300.0
        assert t.min_qps == 100.0
        assert t.mean_qps == pytest.approx(200.0)

    def test_expected_queries(self):
        t = LoadTrace(interval_ms=10_000.0, qps=(100.0, 200.0))
        assert t.expected_queries() == pytest.approx(3000.0)

    def test_load_at(self):
        t = LoadTrace(interval_ms=1_000.0, qps=(10.0, 20.0))
        assert t.load_at(0.0) == 10.0
        assert t.load_at(999.999) == 10.0
        assert t.load_at(1_000.0) == 20.0

    def test_load_at_out_of_range(self):
        t = LoadTrace(interval_ms=1_000.0, qps=(10.0,))
        with pytest.raises(TraceError):
            t.load_at(-1.0)
        with pytest.raises(TraceError):
            t.load_at(1_000.0)

    def test_intervals_iteration(self):
        t = LoadTrace(interval_ms=500.0, qps=(1.0, 2.0))
        assert list(t.intervals()) == [(0.0, 500.0, 1.0), (500.0, 1000.0, 2.0)]

    def test_constant_constructor(self):
        t = LoadTrace.constant(42.0, 5_000.0)
        assert t.qps == (42.0,)
        assert t.duration_ms == 5_000.0

    def test_scaled(self):
        t = LoadTrace.constant(100.0, 1_000.0).scaled(0.1)
        assert t.qps == (10.0,)

    def test_scaled_invalid_factor(self):
        with pytest.raises(TraceError):
            LoadTrace.constant(1.0, 1.0).scaled(0.0)

    def test_truncated(self):
        t = LoadTrace(interval_ms=1_000.0, qps=(1.0, 2.0, 3.0, 4.0))
        assert t.truncated(2_500.0).qps == (1.0, 2.0, 3.0)

    def test_validation(self):
        with pytest.raises(TraceError):
            LoadTrace(interval_ms=0.0, qps=(1.0,))
        with pytest.raises(TraceError):
            LoadTrace(interval_ms=1.0, qps=())
        with pytest.raises(TraceError):
            LoadTrace(interval_ms=1.0, qps=(-1.0,))

    def test_save_load_roundtrip(self, tmp_path):
        t = LoadTrace(interval_ms=10_000.0, qps=(1617.25, 3905.5))
        path = tmp_path / "trace.txt"
        t.save(path)
        loaded = LoadTrace.load(path)
        assert loaded.qps == pytest.approx(t.qps)
        assert loaded.interval_ms == 10_000.0

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n100\n\n200\n")
        assert LoadTrace.load(path).qps == (100.0, 200.0)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("100\nnot-a-number\n")
        with pytest.raises(TraceError):
            LoadTrace.load(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("\n")
        with pytest.raises(TraceError):
            LoadTrace.load(path)


class TestTwitterSynthesizer:
    def test_matches_paper_envelope(self):
        t = synthesize_twitter_trace()
        assert len(t.qps) == 30  # 5 minutes of 10-second intervals
        assert t.min_qps == pytest.approx(1617.0)
        assert t.peak_qps == pytest.approx(3905.0)

    def test_deterministic_for_seed(self):
        assert (
            synthesize_twitter_trace(seed=7).qps
            == synthesize_twitter_trace(seed=7).qps
        )

    def test_different_seeds_differ(self):
        assert (
            synthesize_twitter_trace(seed=1).qps
            != synthesize_twitter_trace(seed=2).qps
        )

    def test_has_variation_not_monotone(self):
        """Diurnal + spikes: the trace rises and falls."""
        qps = synthesize_twitter_trace().qps
        diffs = [b - a for a, b in zip(qps, qps[1:])]
        assert any(d > 0 for d in diffs)
        assert any(d < 0 for d in diffs)

    def test_rejects_bad_parameters(self):
        with pytest.raises(TraceError):
            synthesize_twitter_trace(duration_s=0.0)
        with pytest.raises(TraceError):
            synthesize_twitter_trace(min_qps=100.0, max_qps=50.0)
