"""Tests for repro.profiles.models (ModelProfile / ModelSet)."""

import pytest

from repro.errors import ProfileError
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet


def make_model(name, accuracy, per_item, overhead=2.0):
    return ModelProfile(
        name=name,
        accuracy=accuracy,
        latency=LinearLatencyModel(
            overhead_ms=overhead, per_item_ms=per_item, std_ms=0.0
        ),
    )


class TestModelProfile:
    def test_validation(self):
        with pytest.raises(ProfileError):
            make_model("", 0.5, 1.0)
        with pytest.raises(ValueError):
            make_model("m", 1.5, 1.0)

    def test_latency_lookup(self):
        m = make_model("m", 0.8, 10.0)
        assert m.latency_ms(1) == pytest.approx(12.0)
        assert m.mean_latency_ms(2) == pytest.approx(22.0)

    def test_max_batch_within(self):
        m = make_model("m", 0.8, 10.0)
        assert m.max_batch_within(32.0, cap=8) == 3
        assert m.max_batch_within(5.0, cap=8) is None
        assert m.max_batch_within(1000.0, cap=4) == 4

    def test_peak_throughput(self):
        m = make_model("m", 0.8, 10.0)  # l(b) = 2 + 10b
        # throughput grows with batch: best at the largest feasible batch.
        assert m.peak_throughput_qps(52.0, cap=8) == pytest.approx(
            5 / 52.0 * 1000.0
        )
        assert m.peak_throughput_qps(5.0, cap=8) == 0.0


class TestModelSet:
    def test_container_protocol(self, tiny_models):
        assert len(tiny_models) == 3
        assert "fast" in tiny_models
        assert "missing" not in tiny_models
        assert tiny_models.names == ("fast", "medium", "slow")
        assert tiny_models[0].name == "fast"

    def test_get_and_index(self, tiny_models):
        assert tiny_models.get("medium").accuracy == 0.75
        assert tiny_models.index_of("slow") == 2
        with pytest.raises(ProfileError):
            tiny_models.get("nope")
        with pytest.raises(ProfileError):
            tiny_models.index_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ProfileError):
            ModelSet([make_model("a", 0.5, 1.0), make_model("a", 0.6, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            ModelSet([])

    def test_extremes(self, tiny_models):
        assert tiny_models.fastest().name == "fast"
        assert tiny_models.slowest().name == "slow"
        assert tiny_models.most_accurate().name == "slow"

    def test_max_batch_size(self, tiny_models):
        # fast: l(b) = 2 + 8b -> largest b with l <= 100 is 12, capped.
        assert tiny_models.max_batch_size(100.0, cap=64) == 12
        assert tiny_models.max_batch_size(100.0, cap=8) == 8

    def test_max_batch_size_infeasible(self):
        models = ModelSet([make_model("m", 0.5, 500.0)])
        with pytest.raises(ProfileError):
            models.max_batch_size(100.0)

    def test_subset_order(self, tiny_models):
        sub = tiny_models.subset(["slow", "fast"])
        assert sub.names == ("slow", "fast")

    def test_pareto_front_prunes_dominated(self):
        models = ModelSet(
            [
                make_model("a", 0.6, 5.0),
                make_model("b", 0.5, 10.0),  # dominated by a
                make_model("c", 0.8, 20.0),
                make_model("d", 0.7, 30.0),  # dominated by c
            ]
        )
        assert models.pareto_front().names == ("a", "c")

    def test_pareto_front_sorted_by_latency(self, tiny_models):
        front = tiny_models.pareto_front()
        latencies = [m.latency_ms(1) for m in front]
        assert latencies == sorted(latencies)

    def test_pareto_equal_accuracy_keeps_faster(self):
        models = ModelSet(
            [make_model("fast_eq", 0.7, 5.0), make_model("slow_eq", 0.7, 10.0)]
        )
        assert models.pareto_front().names == ("fast_eq",)

    def test_accuracy_table(self, tiny_models):
        table = tiny_models.accuracy_table()
        assert table == {"fast": 0.60, "medium": 0.75, "slow": 0.90}
