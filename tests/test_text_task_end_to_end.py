"""End-to-end coverage for the text (BERT) task — the paper's second
workload, exercised through the same pipeline as the image task."""

import pytest

from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.runner import clear_caches, run_method
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import text_task

SMOKE = ExperimentScale.smoke()


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()


class TestTextPolicies:
    def test_policy_generation_all_slos(self, text_models):
        """Policies generate and give sane guarantees at every text SLO."""
        for slo in (100.0, 200.0, 300.0):
            config = WorkerMDPConfig.default_poisson(
                text_models,
                slo_ms=slo,
                load_qps=60.0,
                num_workers=2,
                fld_resolution=15,
                max_batch_size=16,
            )
            g = generate_policy(config).guarantees
            assert 0.70 <= g.expected_accuracy <= 0.84
            assert g.expected_violation_rate < 0.20

    def test_looser_slo_higher_accuracy(self, text_models):
        """A looser SLO unlocks bigger BERTs — accuracy must rise."""
        accs = []
        for slo in (100.0, 300.0):
            config = WorkerMDPConfig.default_poisson(
                text_models,
                slo_ms=slo,
                load_qps=40.0,
                num_workers=2,
                fld_resolution=15,
                max_batch_size=16,
            )
            accs.append(generate_policy(config).guarantees.expected_accuracy)
        assert accs[1] > accs[0]


class TestTextServing:
    def test_ramsis_vs_baselines(self):
        task = text_task()
        trace = LoadTrace.constant(60.0, 20_000.0)
        cells = {
            m: run_method(m, task, 100.0, 2, trace, SMOKE, oracle_load=True)
            for m in ("RAMSIS", "MS", "JF")
        }
        assert cells["RAMSIS"].plottable
        for name in ("MS", "JF"):
            if cells[name].plottable:
                assert cells["RAMSIS"].accuracy >= cells[name].accuracy - 0.005

    def test_bert_base_reachable_at_loose_slo(self):
        """At the 300 ms SLO and light load, policies should reach
        bert_base (the most accurate model) at least sometimes."""
        task = text_task()
        trace = LoadTrace.constant(10.0, 20_000.0)
        cell = run_method(
            "RAMSIS", task, 300.0, 1, trace, SMOKE, oracle_load=True
        )
        # bert_base accuracy is 84%; near-exclusive use shows up directly.
        assert cell.accuracy > 0.80
