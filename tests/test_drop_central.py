"""Drop-late in the central-queue discipline: worker bookkeeping."""

import numpy as np
import pytest

from repro.arrivals.traces import LoadTrace
from repro.core.policy import Action
from repro.selectors.base import ModelSelector, QueueScope
from repro.sim.simulator import Simulation, SimulationConfig


class LateWhenCrowdedSelector(ModelSelector):
    """Central-scope selector that declares the queue lost when deep."""

    queue_scope = QueueScope.CENTRAL
    name = "late-when-crowded"

    def __init__(self, threshold: int = 3) -> None:
        self._threshold = threshold

    def select(self, queue_length, earliest_slack_ms, now_ms, anticipated_load_qps):
        if queue_length >= self._threshold:
            return Action(model="fast", batch_size=queue_length, is_late=True)
        return Action(model="fast", batch_size=queue_length)


class TestCentralDrop:
    def test_workers_not_leaked_after_drop(self, tiny_models):
        """A drop decision must return the grabbing worker to the idle
        pool; otherwise later arrivals starve.  Conservation across a
        burst + follow-up arrivals catches the leak."""
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=50.0,
                num_workers=2,
                drop_late=True,
                seed=1,
            )
        )
        burst = np.zeros(8)  # crowded: first decisions drop
        later = np.array([500.0, 510.0, 900.0])
        arrivals = np.concatenate([burst, later])
        metrics = sim.run(
            LateWhenCrowdedSelector(threshold=3),
            LoadTrace.constant(1.0, 2_000.0),
            arrival_times=arrivals,
        )
        assert metrics.total_queries == arrivals.shape[0]
        # The later (uncrowded) queries are served normally.
        assert metrics.model_query_counts.get("fast", 0) >= 3

    def test_drop_off_serves_late_instead(self, tiny_models):
        sim = Simulation(
            SimulationConfig(
                model_set=tiny_models,
                slo_ms=50.0,
                num_workers=2,
                drop_late=False,
                seed=1,
            )
        )
        arrivals = np.zeros(8)
        metrics = sim.run(
            LateWhenCrowdedSelector(threshold=3),
            LoadTrace.constant(1.0, 2_000.0),
            arrival_times=arrivals,
        )
        assert metrics.total_queries == 8
        assert "<dropped>" not in metrics.model_query_counts
