"""Tests for load-indexed policy sets (§3.2.2, §6)."""

import pytest

from repro.core.generator import PolicyGenerator
from repro.core.policy_set import PolicySet
from repro.errors import PolicyError


@pytest.fixture
def generator(tiny_config):
    return PolicyGenerator(tiny_config)


class TestGeneration:
    def test_generates_grid(self, generator):
        ps = PolicySet.generate(generator, [10.0, 30.0, 50.0])
        assert len(ps) >= 3
        assert ps.loads_qps[0] == 10.0
        assert ps.max_load_qps == 50.0

    def test_refinement_inserts_midpoints(self, generator):
        """With a tight gap threshold, midpoints must be inserted between
        loads whose expected accuracies differ."""
        coarse = PolicySet.generate(
            generator, [5.0, 45.0], accuracy_gap_threshold=1.0
        )
        refined = PolicySet.generate(
            generator, [5.0, 45.0], accuracy_gap_threshold=0.01, max_policies=12
        )
        assert len(refined) > len(coarse)

    def test_refinement_respects_cap(self, generator):
        ps = PolicySet.generate(
            generator, [5.0, 45.0], accuracy_gap_threshold=1e-6, max_policies=5
        )
        assert len(ps) <= 5

    def test_adjacent_gap_rule_holds(self, generator):
        ps = PolicySet.generate(
            generator, [5.0, 45.0], accuracy_gap_threshold=0.05, max_policies=16
        )
        accs = [p.metadata.expected_accuracy for p in ps]
        gaps = [abs(b - a) for a, b in zip(accs, accs[1:])]
        assert all(g <= 0.05 + 1e-9 for g in gaps)

    def test_empty_grid_rejected(self, generator):
        with pytest.raises(PolicyError):
            PolicySet.generate(generator, [])


class TestSelection:
    def test_lowest_load_policy_meeting_anticipated(self, generator):
        ps = PolicySet.generate(generator, [10.0, 20.0, 40.0], 1.0)
        assert ps.policy_for(5.0).load_qps == 10.0
        assert ps.policy_for(10.0).load_qps == 10.0
        assert ps.policy_for(10.1).load_qps == 20.0
        assert ps.policy_for(39.9).load_qps == 40.0

    def test_overload_generates_new_policy(self, generator):
        ps = PolicySet.generate(generator, [10.0, 20.0], 1.0)
        before = len(ps)
        policy = ps.policy_for(35.0)
        assert policy.load_qps == 35.0
        assert len(ps) == before + 1
        # The new policy is now part of the set.
        assert ps.policy_for(35.0) is policy

    def test_overload_without_generator_falls_back(self, generator):
        ps = PolicySet.generate(generator, [10.0, 20.0], 1.0)
        detached = PolicySet(list(ps))
        assert detached.policy_for(99.0).load_qps == 20.0

    def test_duplicate_loads_rejected(self, generator):
        p = generator.generate(10.0).policy
        with pytest.raises(PolicyError):
            PolicySet([p, p])


class TestPersistence:
    def test_save_load_roundtrip(self, generator, tmp_path):
        ps = PolicySet.generate(generator, [10.0, 30.0], 1.0)
        ps.save(tmp_path / "policies")
        loaded = PolicySet.load(tmp_path / "policies")
        assert loaded.loads_qps == ps.loads_qps
        assert loaded.policy_for(10.0).states() == ps.policy_for(10.0).states()

    def test_load_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(PolicyError):
            PolicySet.load(tmp_path / "empty")

    def test_summary_rows(self, generator):
        ps = PolicySet.generate(generator, [10.0, 30.0], 1.0)
        rows = ps.summary()
        assert len(rows) == len(ps)
        assert rows[0]["load_qps"] == 10.0
        assert 0.0 <= rows[0]["expected_accuracy"] <= 1.0


class TestGeneratorCaching:
    def test_cache_hits(self, generator):
        a = generator.generate(15.0)
        b = generator.generate(15.0)
        assert a is b
        assert generator.cache_size() == 1

    def test_worker_override(self, generator):
        a = generator.generate(15.0)
        b = generator.generate(15.0, num_workers=2)
        assert a is not b
        assert b.policy.metadata.num_workers == 2
