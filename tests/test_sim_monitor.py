"""LoadMonitor reset/re-use semantics and the Gauge.clear primitive."""

import math

from repro.obs.metrics import MetricsRegistry
from repro.sim.monitor import LoadMonitor


class TestGaugeClear:
    def test_clear_drops_series_and_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.0, t_ms=1.0)
        gauge.set(4.0, t_ms=2.0)
        gauge.clear()
        assert gauge.series == ()
        assert math.isnan(gauge.value)

    def test_clear_then_set_starts_fresh(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.0, t_ms=1.0)
        gauge.clear()
        gauge.set(7.0, t_ms=5.0)
        assert gauge.series == ((5.0, 7.0),)
        assert gauge.value == 7.0


class TestLoadMonitorReset:
    def _recorded_monitor(self):
        registry = MetricsRegistry()
        monitor = LoadMonitor(window_ms=500.0)
        monitor.attach_registry(registry)
        for i in range(10):
            monitor.record_arrival(100.0 + i * 10.0)
        return monitor, registry

    def test_reset_clears_gauge_series_and_republishes_zero(self):
        monitor, registry = self._recorded_monitor()
        for name in ("monitor_anticipated_load_qps", "monitor_realized_load_qps"):
            (gauge,) = registry.collect(name)
            assert gauge.series, f"{name} recorded no samples before reset"

        monitor.reset()

        for name in ("monitor_anticipated_load_qps", "monitor_realized_load_qps"):
            (gauge,) = registry.collect(name)
            # Stale samples must not leak into the next run's export...
            assert gauge.series == ()
            # ...and the gauge reads 0.0 (not NaN) until new arrivals land.
            assert gauge.value == 0.0
        assert monitor.anticipated_load_qps(1000.0) == 0.0

    def test_reset_keeps_arrivals_counter_monotonic(self):
        monitor, registry = self._recorded_monitor()
        (counter,) = registry.collect("monitor_arrivals_total")
        before = counter.value
        monitor.reset()
        assert counter.value == before
        monitor.record_arrival(5000.0)
        assert counter.value == before + 1

    def test_reset_without_registry_is_safe(self):
        monitor = LoadMonitor()
        monitor.record_arrival(10.0)
        monitor.reset()
        assert monitor.realized_load_qps(20.0) == 0.0

    def test_monitor_usable_after_reset(self):
        monitor, registry = self._recorded_monitor()
        monitor.reset()
        monitor.record_arrival(100.0)
        monitor.record_arrival(200.0)
        assert monitor.realized_load_qps(200.0) > 0.0
        (gauge,) = registry.collect("monitor_realized_load_qps")
        assert len(gauge.series) == 2
